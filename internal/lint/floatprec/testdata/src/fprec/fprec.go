// Package fprec seeds positive and negative cases for the floatprec
// analyzer inside a deterministic-core package.
//
//soferr:deterministic
package fprec

import (
	"math"

	"numeric"
)

// --- 1 - exp cancellation ---

func oneMinusExp(x float64) float64 {
	return 1 - math.Exp(-x) // want `1 - math\.Exp\(x\) cancels catastrophically`
}

func expMinusOne(x float64) float64 {
	return math.Exp(x) - 1 // want `math\.Exp\(x\) - 1 cancels catastrophically`
}

func oneMinusExpNegHelper(x float64) float64 {
	return 1 - numeric.ExpNeg(x) // want `1 - numeric\.ExpNeg\(x\) cancels catastrophically`
}

func stableForms(x float64) float64 {
	return -math.Expm1(-x) + numeric.OneMinusExpNeg(x)
}

func unrelatedSubtraction(x float64) float64 {
	return 1 - x // plain arithmetic; no exponential involved
}

// --- log(1±x) ---

func logOnePlus(x float64) float64 {
	return math.Log(1 + x) // want `math\.Log\(1 \+ x\) loses x below 2\^-53`
}

func logPlusOne(x float64) float64 {
	return math.Log(x + 1) // want `math\.Log\(1 \+ x\) loses x below 2\^-53`
}

func logOneMinus(x float64) float64 {
	return math.Log(1 - x) // want `math\.Log\(1 - x\) loses x below 2\^-53`
}

func logStable(x float64) float64 {
	return math.Log1p(x) + math.Log(2+x) + math.Log(1+0.5)
}

// --- float equality ---

const tableCap = 4096.0

func eqComputed(a, b float64) bool {
	return a == b // want `a == b compares computed floats exactly`
}

func neqComputed(a, b float64) bool {
	return a != b // want `a != b compares computed floats exactly`
}

func eqSentinels(a float64, xs []float64, i int) bool {
	zero := a == 0
	one := a == 1.0
	capHit := a == tableCap
	inf := a == math.Inf(1)
	nan := a != a
	boundary := xs[i] == xs[i+1]
	return zero || one || capHit || inf || nan || boundary
}

func eqCrossTable(xs, ys []float64, i int) bool {
	return xs[i] == ys[i] // want `xs\[i\] == ys\[i\] compares computed floats exactly`
}

func eqAllowed(a, b float64) bool {
	return a == b //soferr:allow floatprec bisection termination; both sides come from the same assignment
}

func eqUnjustified(a, b float64) bool {
	/* want `soferr:allow floatprec needs a justification` */ //soferr:allow floatprec
	return a == b                                             // want `a == b compares computed floats exactly`
}

func staleAllowLine(a float64) float64 {
	/* want `soferr:allow floatprec suppresses no floatprec diagnostic` */ //soferr:allow floatprec the comparison this excused was rewritten
	return a * 2
}

// intEquality is fine: exactness is the point of integers.
func intEquality(a, b int) bool { return a == b }
