// Package fphot seeds floatprec cases for //soferr:hotpath functions
// in a package that is NOT deterministic-core: only the hot functions
// are checked, and the naive-accumulation rule applies inside them.
package fphot

import (
	"math"

	"numeric"
)

//soferr:hotpath
func hotOneMinusExp(x float64) float64 {
	return 1 - math.Exp(-x) // want `1 - math\.Exp\(x\) cancels catastrophically`
}

//soferr:hotpath
func hotNaiveSum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x // want `hotpath accumulates sum with a naive \+= across loop iterations`
	}
	return sum
}

//soferr:hotpath
func hotNestedNaiveSum(xss [][]float64) float64 {
	total := 0.0
	for _, xs := range xss {
		for _, x := range xs {
			total += x // want `hotpath accumulates total with a naive \+= across loop iterations`
		}
	}
	return total
}

//soferr:hotpath
func hotKahanSum(xs []float64) float64 {
	var k numeric.KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

//soferr:hotpath
func hotPerIterationAccumulator(xs []float64) float64 {
	last := 0.0
	for _, x := range xs {
		delta := 0.0
		delta += x // restarts every iteration; no drift across the loop
		last = delta
	}
	return last
}

//soferr:hotpath
func hotIntCounter(xs []float64) int {
	n := 0
	for range xs {
		n += 1 // integer accumulation is exact
	}
	return n
}

//soferr:hotpath
func hotNoLoopAccumulate(k *numeric.KahanSum, x float64) {
	// += outside any loop is a single rounding, not a drift.
	x += 1
	k.Add(x)
}

//soferr:hotpath
func hotAllowedClock(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x //soferr:allow floatprec arrival clock; the running value is semantically the sum of its own draws
	}
	return t
}

// cold functions in a non-core package are not floatprec's business.
func coldOneMinusExp(x float64) float64 {
	return 1 - math.Exp(-x)
}

func coldEquality(a, b float64) bool {
	return a == b
}

func coldNaiveSum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
