// Package floatprec implements the soferrlint analyzer guarding the
// numeric-precision idioms the exact engine's correctness rests on
// (see DESIGN.md, "Static contracts", numeric-idiom table). The exact
// closed forms stay accurate across twelve decades of hazard only
// because a handful of hand-placed floating-point idioms avoid
// catastrophic cancellation — and nothing but this analyzer stops a
// refactor from silently reverting one. In the deterministic core
// (the //soferr:deterministic packages, recognized by marker and by
// import path) and inside every //soferr:hotpath function it flags:
//
//   - 1 - math.Exp(x) and math.Exp(x) - 1, which cancel to rounding
//     noise for |x| near zero — use math.Expm1 (or
//     numeric.OneMinusExpNeg for the 1 - e^(-x) form). The same trap
//     spelled 1 - numeric.ExpNeg(x) is flagged too.
//   - math.Log(1 + x) and math.Log(1 - x), which lose all of x's
//     precision once |x| drops below 2^-53 — use math.Log1p.
//   - == and != between floating-point expressions, outside the
//     sentinel comparisons that are exact by construction: literals
//     and named constants (0, 1, table caps), math.Inf/math.NaN
//     calls, x == x NaN probes, and comparisons between elements of
//     one table (both operands indexing the same slice — exact table
//     boundaries are bit-copied, never recomputed).
//   - naive += accumulation of a float across the iterations of a
//     loop in a //soferr:hotpath function, where numeric.KahanSum is
//     the contract for statistical sums. Arrival-clock walks whose
//     running value is semantically the sum of its own draws carry a
//     documented allow.
//
// Escape hatch: //soferr:allow floatprec <why>.
package floatprec

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/soferr/soferr/internal/lint/directive"
)

const name = "floatprec"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "forbid cancellation-prone float idioms (1-exp, log(1±x), ==, naive loop sums) in the deterministic core and hot paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer, directive.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := pass.ResultOf[directive.Analyzer].(*directive.Index)
	for _, a := range dirs.Unjustified(name) {
		pass.Reportf(a.Pos, "soferr:allow %s needs a justification (\"//soferr:allow %s <why>\")", name, name)
	}

	report := func(n ast.Node, format string, args ...interface{}) {
		if dirs.Allows(name, n.Pos()) {
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	coreScope := dirs.Deterministic() || directive.CorePaths[pass.Pkg.Path()]

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	inTest := false
	var hotFunc *ast.FuncDecl // innermost enclosing //soferr:hotpath function, if any
	ins.Preorder([]ast.Node{
		(*ast.File)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.BinaryExpr)(nil),
		(*ast.CallExpr)(nil),
		(*ast.AssignStmt)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			inTest = strings.HasSuffix(pass.Fset.File(n.Pos()).Name(), "_test.go")
			hotFunc = nil
		case *ast.FuncDecl:
			if dirs.Hotpath(n) {
				hotFunc = n
			} else if hotFunc != nil && (n.Pos() < hotFunc.Pos() || n.End() > hotFunc.End()) {
				hotFunc = nil
			}
		case *ast.BinaryExpr:
			if inTest || !(coreScope || within(n, hotFunc)) {
				return
			}
			checkOneMinusExp(pass, report, n)
			checkFloatEquality(pass, report, n)
		case *ast.CallExpr:
			if inTest || !(coreScope || within(n, hotFunc)) {
				return
			}
			checkLogOnePlus(pass, report, n)
		case *ast.AssignStmt:
			if inTest || hotFunc == nil || !within(n, hotFunc) {
				return
			}
			checkNaiveAccumulation(pass, report, hotFunc, n)
		}
	})
	dirs.ReportStale(name, pass.Reportf)
	return nil, nil
}

// within reports whether n lies inside fd's extent (fd may be nil).
// Preorder has no scope exit events, so hotFunc can linger after the
// walk leaves the function; the range check makes membership exact.
func within(n ast.Node, fd *ast.FuncDecl) bool {
	return fd != nil && fd.Pos() <= n.Pos() && n.End() <= fd.End()
}

// checkOneMinusExp flags 1 - math.Exp(x), math.Exp(x) - 1, and
// 1 - numeric.ExpNeg(x): all three cancel catastrophically when the
// exponential is near 1.
func checkOneMinusExp(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), b *ast.BinaryExpr) {
	if b.Op != token.SUB {
		return
	}
	if isFloatConst(pass, b.X, 1) {
		if callee := pkgFunc(pass, b.Y); callee != "" {
			switch callee {
			case "math.Exp":
				report(b, "1 - math.Exp(x) cancels catastrophically for x near 0; use -math.Expm1(x) (or numeric.OneMinusExpNeg(-x) for the 1-e^(-x) form)")
			case "numeric.ExpNeg":
				report(b, "1 - numeric.ExpNeg(x) cancels catastrophically for x near 0; use numeric.OneMinusExpNeg(x)")
			}
		}
	}
	if isFloatConst(pass, b.Y, 1) && pkgFunc(pass, b.X) == "math.Exp" {
		report(b, "math.Exp(x) - 1 cancels catastrophically for x near 0; use math.Expm1(x)")
	}
}

// checkLogOnePlus flags math.Log(1 + x) and math.Log(1 - x) with a
// non-constant x: the argument rounds to 1 long before x reaches zero,
// so the log silently loses x entirely; math.Log1p keeps it.
func checkLogOnePlus(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), call *ast.CallExpr) {
	if pkgFunc(pass, call) != "math.Log" || len(call.Args) != 1 {
		return
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.BinaryExpr)
	if !ok || isConst(pass, arg) {
		return
	}
	switch arg.Op {
	case token.ADD:
		if isFloatConst(pass, arg.X, 1) || isFloatConst(pass, arg.Y, 1) {
			report(call, "math.Log(1 + x) loses x below 2^-53; use math.Log1p(x)")
		}
	case token.SUB:
		if isFloatConst(pass, arg.X, 1) {
			report(call, "math.Log(1 - x) loses x below 2^-53; use math.Log1p(-x)")
		}
	}
}

// checkFloatEquality flags ==/!= between float expressions outside the
// sentinel forms that are exact by construction.
func checkFloatEquality(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloatExpr(pass, b.X) || !isFloatExpr(pass, b.Y) {
		return
	}
	// Sentinels: a compile-time constant on either side (0, 1, a named
	// cap — exact by definition), an explicit ±Inf or NaN probe, the
	// x == x self-test, and boundary comparisons between entries of the
	// same table (both sides index one slice; table entries are
	// bit-copied, never recomputed).
	if isConst(pass, b.X) || isConst(pass, b.Y) {
		return
	}
	if isInfOrNaNCall(pass, b.X) || isInfOrNaNCall(pass, b.Y) {
		return
	}
	if types.ExprString(b.X) == types.ExprString(b.Y) {
		return // x == x / x != x NaN probe
	}
	if sameTableIndex(b.X, b.Y) {
		return
	}
	op := "=="
	if b.Op == token.NEQ {
		op = "!="
	}
	report(b, "%s %s %s compares computed floats exactly; compare against a sentinel constant or an explicit tolerance (or //soferr:allow floatprec <why>)",
		types.ExprString(b.X), op, types.ExprString(b.Y))
}

// checkNaiveAccumulation flags `acc += x` on a float accumulator
// declared outside the loop that runs it: across many iterations the
// naive sum drifts by n·ulp, which is exactly what numeric.KahanSum
// exists to stop.
func checkNaiveAccumulation(pass *analysis.Pass, report func(ast.Node, string, ...interface{}), fd *ast.FuncDecl, assign *ast.AssignStmt) {
	if assign.Tok != token.ADD_ASSIGN || len(assign.Lhs) != 1 {
		return
	}
	lhs := assign.Lhs[0]
	if !isFloatExpr(pass, lhs) {
		return
	}
	loop := enclosingLoop(fd, assign)
	if loop == nil {
		return
	}
	// An accumulator created inside the loop body restarts every
	// iteration; only accumulation across iterations drifts.
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && loop.Pos() <= obj.Pos() && obj.Pos() <= loop.End() {
			return
		}
	}
	report(assign, "hotpath accumulates %s with a naive += across loop iterations; use numeric.KahanSum for compensated summation (or //soferr:allow floatprec <why>)",
		types.ExprString(lhs))
}

// enclosingLoop returns the innermost for/range statement in fd that
// strictly contains n, or nil.
func enclosingLoop(fd *ast.FuncDecl, n ast.Node) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(fd, func(cand ast.Node) bool {
		switch cand.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if cand.Pos() < n.Pos() && n.End() <= cand.End() {
				found = cand.(ast.Stmt) // keep the innermost
			}
		}
		return true
	})
	return found
}

// pkgFunc returns "pkg.Func" for a call (or callee expression) of a
// package-level function, or "".
func pkgFunc(pass *analysis.Pass, e ast.Expr) string {
	var fun ast.Expr
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fun = e.Fun
	default:
		return ""
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e has a compile-time constant value.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// isFloatConst reports whether e is a compile-time constant equal to
// the given float value (covers 1, 1.0, and named constants).
func isFloatConst(pass *analysis.Pass, e ast.Expr, want float64) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
	default:
		return false
	}
	f, ok := constant.Float64Val(tv.Value)
	return ok && f == want
}

func isInfOrNaNCall(pass *analysis.Pass, e ast.Expr) bool {
	switch pkgFunc(pass, e) {
	case "math.Inf", "math.NaN":
		return true
	}
	return false
}

// sameTableIndex reports whether both expressions are index
// expressions over the same identifier spelling — the exact-table-
// boundary comparison idiom (xs[i] == xs[j], m.cumHaz[i] == m.cumHaz[i+1]).
func sameTableIndex(x, y ast.Expr) bool {
	ix, ok := ast.Unparen(x).(*ast.IndexExpr)
	if !ok {
		return false
	}
	iy, ok := ast.Unparen(y).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return types.ExprString(ix.X) == types.ExprString(iy.X)
}
