// Package lint assembles the soferrlint analyzer suite: the five
// custom go/analysis analyzers that statically enforce this repo's
// determinism, hot-path, error, context, and fault-injection
// contracts (see DESIGN.md, "Static contracts").
//
// The suite runs through cmd/soferrlint, standalone or as a
// `go vet -vettool`; each analyzer also works on its own under any
// go/analysis driver.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"github.com/soferr/soferr/internal/lint/ctxflow"
	"github.com/soferr/soferr/internal/lint/errcontract"
	"github.com/soferr/soferr/internal/lint/faultpoint"
	"github.com/soferr/soferr/internal/lint/hotpath"
	"github.com/soferr/soferr/internal/lint/nondeterminism"
)

// Suite returns the soferrlint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nondeterminism.Analyzer,
		hotpath.Analyzer,
		errcontract.Analyzer,
		ctxflow.Analyzer,
		faultpoint.Analyzer,
	}
}
