// Package lint assembles the soferrlint analyzer suite: the eight
// custom go/analysis analyzers that statically enforce this repo's
// determinism, hot-path, numeric-precision, allocation, error,
// context, fault-injection, and panic-containment contracts (see
// DESIGN.md, "Static contracts").
//
// The suite runs through cmd/soferrlint, standalone or as a
// `go vet -vettool`; each analyzer also works on its own under any
// go/analysis driver. The compiler-verified escape baseline
// (internal/lint/escape) is a separate driver mode — `soferrlint
// escape` — because it needs whole-module `go build` output rather
// than per-package type-checked ASTs.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"github.com/soferr/soferr/internal/lint/allocfree"
	"github.com/soferr/soferr/internal/lint/ctxflow"
	"github.com/soferr/soferr/internal/lint/errcontract"
	"github.com/soferr/soferr/internal/lint/faultpoint"
	"github.com/soferr/soferr/internal/lint/floatprec"
	"github.com/soferr/soferr/internal/lint/gocontain"
	"github.com/soferr/soferr/internal/lint/hotpath"
	"github.com/soferr/soferr/internal/lint/nondeterminism"
)

// Suite returns the soferrlint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nondeterminism.Analyzer,
		hotpath.Analyzer,
		floatprec.Analyzer,
		allocfree.Analyzer,
		errcontract.Analyzer,
		ctxflow.Analyzer,
		faultpoint.Analyzer,
		gocontain.Analyzer,
	}
}
