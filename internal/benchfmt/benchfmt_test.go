package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateAcceptsWellFormedReports(t *testing.T) {
	cases := []string{
		`{"go_version":"go1.24.0","goarch":"amd64","speedup":3.5}`,
		`{"go_version":"go1.24.0","goarch":"amd64","benchmarks":[{"name":"x","ns_per_op":12.5,"allocs_per_op":0}]}`,
		`{"go_version":"go1.24.0","goarch":"amd64","nested":{"deep":{"count":1}},"flags":{"ok":true},"label":"a"}`,
	}
	for _, c := range cases {
		if err := Validate([]byte(c)); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", c, err)
		}
	}
}

func TestValidateRejectsMalformedReports(t *testing.T) {
	cases := map[string]string{
		`not json`:                        "not a JSON",
		`[1,2,3]`:                         "not a JSON object",
		`{"goarch":"amd64","x":1}`:        "go_version",
		`{"go_version":"go1.24.0","x":1}`: "goarch",
		`{"go_version":"go1.24.0","goarch":"amd64"}`:                     "no numeric",
		`{"go_version":"go1.24.0","goarch":"amd64","only":"strings"}`:    "no numeric",
		`{"go_version":"go1.24.0","goarch":"amd64","bench":null}`:        "null value",
		`{"go_version":"go1.24.0","goarch":"amd64","rows":[{"v":null}]}`: "null value",
	}
	for doc, wantSub := range cases {
		err := Validate([]byte(doc))
		if err == nil {
			t.Errorf("Validate(%s) accepted, want error containing %q", doc, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Validate(%s) = %v, want error containing %q", doc, err, wantSub)
		}
	}
}

func TestValidateFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"go_version":"go1.24.0","goarch":"amd64","n":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(good); err != nil {
		t.Errorf("ValidateFile(good) = %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("ValidateFile(bad) = %v, want error naming the file", err)
	}
	if err := ValidateFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ValidateFile(missing) accepted")
	}
}

// TestRequiredSections covers the per-basename section pinning: a
// BENCH_fused.json without its batched/qmc sections is a stale report
// from an older harness and must fail, while the same document under
// an unregistered name still passes the plain envelope.
func TestRequiredSections(t *testing.T) {
	doc := []byte(`{"go_version":"go1.24.0","goarch":"amd64","scaling":[{"components":1}],"speedup_at_n":{"1":1},"adaptive":{"target_rel_stderr":0.01}}`)
	dir := t.TempDir()
	stale := filepath.Join(dir, "BENCH_fused.json")
	if err := os.WriteFile(stale, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	err := ValidateFile(stale)
	if err == nil || !strings.Contains(err.Error(), "batched") {
		t.Errorf("ValidateFile(stale fused report) = %v, want missing-section error naming batched", err)
	}
	other := filepath.Join(dir, "BENCH_other.json")
	if err := os.WriteFile(other, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(other); err != nil {
		t.Errorf("ValidateFile(unregistered basename) = %v, want nil", err)
	}
	if err := ValidateSections(doc, []string{"scaling", "adaptive"}); err != nil {
		t.Errorf("ValidateSections(present) = %v, want nil", err)
	}
}

// TestRepositoryReportsValidate pins the committed BENCH_*.json files
// to the shared schema, so a hand-edited or truncated report fails in
// CI.
func TestRepositoryReportsValidate(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed BENCH_*.json files")
	}
	for _, path := range matches {
		if err := ValidateFile(path); err != nil {
			t.Errorf("%v", err)
		}
	}
}
