// Package benchfmt defines the shared schema of the repository's
// BENCH_*.json reports (BENCH_mc.json, BENCH_sweep.json,
// BENCH_serve.json, BENCH_fused.json) and validates report documents
// against it, so `soferr bench -validate` and the CI bench job can
// catch a malformed or truncated report before it is committed.
//
// The schema is deliberately an envelope, not a per-file struct: every
// report is a JSON object carrying the Header fields (go_version,
// goarch) plus report-specific sections whose leaves are finite
// numbers, strings, or booleans. Report shapes evolve PR over PR;
// the envelope pins what every consumer relies on.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Header is the envelope every benchmark report shares: the toolchain
// and architecture the numbers were measured on.
type Header struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
}

// Validate checks one report document against the shared schema:
//
//   - the document is a JSON object,
//   - go_version and goarch are present non-empty strings,
//   - at least one numeric measurement appears outside the header,
//   - no null leaves (a null measurement means a write was skipped).
//
// JSON numbers are finite by construction, so no non-finite check is
// needed; the soferr JSON surfaces that can carry infinities
// (Estimate) do not appear in benchmark reports.
func Validate(data []byte) error {
	var hdr Header
	if err := json.Unmarshal(data, &hdr); err != nil {
		return fmt.Errorf("benchfmt: not a JSON object: %w", err)
	}
	if hdr.GoVersion == "" {
		return fmt.Errorf("benchfmt: missing go_version")
	}
	if hdr.GOARCH == "" {
		return fmt.Errorf("benchfmt: missing goarch")
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	numbers := 0
	for key, v := range doc {
		if key == "go_version" || key == "goarch" {
			continue
		}
		n, err := countLeaves(key, v)
		if err != nil {
			return err
		}
		numbers += n
	}
	if numbers == 0 {
		return fmt.Errorf("benchfmt: report carries no numeric measurements")
	}
	return nil
}

// countLeaves walks a decoded JSON value, counts numeric leaves, and
// rejects nulls.
func countLeaves(path string, v interface{}) (int, error) {
	switch x := v.(type) {
	case nil:
		return 0, fmt.Errorf("benchfmt: null value at %s", path)
	case float64:
		return 1, nil
	case string, bool:
		return 0, nil
	case []interface{}:
		total := 0
		for i, e := range x {
			n, err := countLeaves(fmt.Sprintf("%s[%d]", path, i), e)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	case map[string]interface{}:
		total := 0
		for k, e := range x {
			n, err := countLeaves(path+"."+k, e)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	default:
		return 0, fmt.Errorf("benchfmt: unsupported value at %s: %T", path, v)
	}
}

// ValidateFile reads and validates one report file.
func ValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
