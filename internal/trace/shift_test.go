package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/soferr/soferr/internal/numeric"
)

func TestShiftBasic(t *testing.T) {
	p := mustBusyIdle(t, 10, 4) // vulnerable [0,4)
	s, err := Shift(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Shifted: vulnerable [3,7).
	for _, tt := range []struct{ x, want float64 }{
		{0, 0}, {2.9, 0}, {3.1, 1}, {6.9, 1}, {7.1, 0}, {9.9, 0},
	} {
		if got := s.VulnAt(tt.x); got != tt.want {
			t.Errorf("VulnAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if numeric.RelErr(s.AVF(), p.AVF()) > 1e-12 {
		t.Errorf("shift changed AVF: %v vs %v", s.AVF(), p.AVF())
	}
}

func TestShiftWrapsVulnerableWindow(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	s, err := Shift(p, 8) // vulnerable [8,10) + [0,2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct{ x, want float64 }{
		{1, 1}, {3, 0}, {7, 0}, {9, 1},
	} {
		if got := s.VulnAt(tt.x); got != tt.want {
			t.Errorf("VulnAt(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestShiftProperties(t *testing.T) {
	base := mustPiecewise(t, []Segment{{0, 3, 0.25}, {3, 5, 1}, {5, 11, 0}})
	f := func(rawOff float64) bool {
		off := math.Mod(rawOff, 50)
		s, err := Shift(base, off)
		if err != nil {
			return false
		}
		// Period and AVF are invariant; VulnAt shifts.
		if numeric.RelErr(s.Period(), base.Period()) > 1e-12 {
			return false
		}
		if math.Abs(s.AVF()-base.AVF()) > 1e-12 {
			return false
		}
		for _, x := range []float64{0.5, 2.9, 4.1, 7.7, 10.2} {
			if math.Abs(s.VulnAt(x+off)-base.VulnAt(x)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShiftZeroAndNil(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	s, err := Shift(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.AVF() != p.AVF() || s.Period() != p.Period() {
		t.Error("zero shift changed trace")
	}
	if _, err := Shift(nil, 1); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestShiftNegativeOffset(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	a, err := Shift(p, -3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shift(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 3.5, 6.5, 9.5} {
		if a.VulnAt(x) != b.VulnAt(x) {
			t.Errorf("Shift(-3) != Shift(7) at %v", x)
		}
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 1.5, 0.75}, {1.5, 4, 0}, {4, 9.25, 1}})
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	q, err := ReadPiecewise(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Period() != p.Period() || q.AVF() != p.AVF() || q.NumSegments() != p.NumSegments() {
		t.Errorf("round trip mismatch: %v/%v vs %v/%v", q.Period(), q.AVF(), p.Period(), p.AVF())
	}
	for _, x := range []float64{0.1, 2, 5, 9} {
		if q.VulnAt(x) != p.VulnAt(x) {
			t.Errorf("VulnAt(%v) differs after round trip", x)
		}
	}
}

func TestEncodingRejectsGarbage(t *testing.T) {
	if _, err := ReadPiecewise(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.Write([]byte{0x53, 0x46, 0x54, 0x52}) // SFTR
	buf.Write([]byte{9, 0, 0, 0})             // version 9
	if _, err := ReadPiecewise(&buf); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated stream.
	var buf2 bytes.Buffer
	p := mustBusyIdle(t, 10, 4)
	if _, err := p.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-5]
	if _, err := ReadPiecewise(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEncodingLargeTrace(t *testing.T) {
	bits := make([]bool, 4096)
	for i := range bits {
		bits[i] = i%3 == 0
	}
	p, err := FromBits(bits, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadPiecewise(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(q.AVF(), p.AVF()) > 1e-12 {
		t.Errorf("AVF drifted: %v vs %v", q.AVF(), p.AVF())
	}
}
