package trace

import (
	"errors"
	"fmt"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errCoarsenNil = errors.New("trace: Coarsen of nil trace")
)

// Coarsen reduces a trace to at most maxSegments equal-width segments
// whose vulnerability is the exact time-average of the original within
// each window. The AVF (and therefore every rate-linear quantity) is
// preserved exactly; what is lost is sub-window placement, which
// perturbs survival quantities only at second order in
// rate x windowWidth. For simulator traces with millions of
// cycle-granularity segments, coarsening to ~1e5 windows makes
// Monte-Carlo lookups several times faster at negligible (<1e-6)
// distortion for any realistic raw error rate.
//
// If the trace already fits, the original is returned unchanged.
func Coarsen(p *Piecewise, maxSegments int) (*Piecewise, error) {
	if p == nil {
		return nil, errCoarsenNil
	}
	if maxSegments < 1 {
		return nil, fmt.Errorf("trace: Coarsen needs maxSegments >= 1, got %d", maxSegments)
	}
	if len(p.segs) <= maxSegments {
		return p, nil
	}
	width := p.period / float64(maxSegments)
	segs := make([]Segment, maxSegments)
	prevExp := 0.0
	start := 0.0
	for i := 0; i < maxSegments; i++ {
		end := float64(i+1) * width
		if i == maxSegments-1 {
			end = p.period
		}
		exp := p.Exposure(end)
		v := (exp - prevExp) / (end - start)
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		segs[i] = Segment{Start: start, End: end, Vuln: v}
		prevExp = exp
		start = end
	}
	return NewPiecewise(segs)
}
