package trace

import (
	"errors"
	"math"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errStatsNil = errors.New("trace: ComputeStats of nil trace")
)

// Stats summarizes the temporal structure of a masking trace. The
// quantities matter because every AVF+SOFR failure mode in the paper is
// driven not by the AVF itself but by *how* vulnerability is arranged
// in time: long coherent busy/idle runs (large burstiness at long time
// scales) are what break the uniformity and exponentiality assumptions.
type Stats struct {
	// Period and AVF restate the trace basics.
	Period float64
	AVF    float64
	// Segments is the number of constant-vulnerability segments.
	Segments int
	// VulnTime is the total vulnerability-weighted time per period.
	VulnTime float64
	// MaxVulnRun and MaxMaskedRun are the longest contiguous spans with
	// vulnerability above/below the 0.5 threshold.
	MaxVulnRun   float64
	MaxMaskedRun float64
	// MeanVulnRun is the average length of above-threshold runs.
	MeanVulnRun float64
	// VulnVariance is the time-weighted variance of the instantaneous
	// vulnerability around the AVF. Zero means constant vulnerability —
	// the one case where the AVF step is exact at every rate.
	VulnVariance float64
	// BreakRate estimates the raw error rate (errors/second) at which
	// the AVF-step MTTF first deviates ~10% from first principles:
	// roughly 0.4 divided by the longest coherent run. +Inf when the
	// vulnerability is constant.
	BreakRate float64
}

// ComputeStats analyzes a materialized trace.
func ComputeStats(p *Piecewise) (Stats, error) {
	if p == nil {
		return Stats{}, errStatsNil
	}
	st := Stats{
		Period:   p.period,
		AVF:      p.avf,
		Segments: len(p.segs),
		VulnTime: p.avf * p.period,
	}

	const threshold = 0.5
	var (
		runLen     float64
		vulnRun    bool
		vulnRuns   []float64
		maskedRuns []float64
	)
	flush := func() {
		if runLen == 0 {
			return
		}
		if vulnRun {
			vulnRuns = append(vulnRuns, runLen)
		} else {
			maskedRuns = append(maskedRuns, runLen)
		}
	}
	for i, s := range p.segs {
		isVuln := s.Vuln >= threshold
		length := s.End - s.Start
		if i == 0 {
			vulnRun = isVuln
			runLen = length
			continue
		}
		if isVuln == vulnRun {
			runLen += length
			continue
		}
		flush()
		vulnRun = isVuln
		runLen = length
	}
	flush()
	// The trace repeats: if the first and last runs are the same kind,
	// they are one run across the wrap point. Merge for the maxima.
	if len(vulnRuns)+len(maskedRuns) >= 2 {
		firstVuln := p.segs[0].Vuln >= threshold
		lastVuln := p.segs[len(p.segs)-1].Vuln >= threshold
		if firstVuln == lastVuln {
			if firstVuln && len(vulnRuns) >= 2 {
				vulnRuns[0] += vulnRuns[len(vulnRuns)-1]
				vulnRuns = vulnRuns[:len(vulnRuns)-1]
			} else if !firstVuln && len(maskedRuns) >= 2 {
				maskedRuns[0] += maskedRuns[len(maskedRuns)-1]
				maskedRuns = maskedRuns[:len(maskedRuns)-1]
			}
		}
	}
	sum := 0.0
	for _, r := range vulnRuns {
		sum += r
		if r > st.MaxVulnRun {
			st.MaxVulnRun = r
		}
	}
	if len(vulnRuns) > 0 {
		st.MeanVulnRun = sum / float64(len(vulnRuns))
	}
	for _, r := range maskedRuns {
		if r > st.MaxMaskedRun {
			st.MaxMaskedRun = r
		}
	}

	for _, s := range p.segs {
		d := s.Vuln - p.avf
		st.VulnVariance += d * d * (s.End - s.Start)
	}
	st.VulnVariance /= p.period

	longest := math.Max(st.MaxVulnRun, st.MaxMaskedRun)
	if st.VulnVariance < 1e-15 || longest == 0 {
		st.BreakRate = math.Inf(1)
	} else {
		st.BreakRate = 0.4 / longest
	}
	return st, nil
}
