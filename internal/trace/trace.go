// Package trace defines masking traces: the interchange format between
// the timing simulator / workload generators and every MTTF estimator
// (AVF, SOFR, Monte-Carlo, SoftArch, analytic).
//
// A masking trace describes one iteration of an infinitely repeating
// workload loop of length Period seconds (Section 3's assumption 2: the
// workload runs in a loop with identical iterations of size L). At every
// instant the trace gives the probability, in [0, 1], that a raw soft
// error arriving at that instant is NOT masked — the instantaneous
// vulnerability. For functional units this is 0/1 (busy/idle, Section
// 4.1); for the register file it is the fraction of registers holding a
// value that will be read again, so it takes fractional values.
//
// The time-average of the vulnerability over one period is exactly the
// component's AVF (Section 2.2).
//
//soferr:deterministic
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"github.com/soferr/soferr/internal/numeric"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNoSegments = errors.New("trace: no segments")
)

// Trace is an infinitely repeating masking pattern.
type Trace interface {
	// Period returns the loop iteration length L in seconds.
	Period() float64

	// AVF returns the architecture vulnerability factor: the
	// time-average of the instantaneous vulnerability over one period.
	AVF() float64

	// VulnAt returns the probability that a raw error arriving at
	// absolute time t >= 0 is unmasked. Implementations wrap t modulo
	// Period.
	VulnAt(t float64) float64

	// SurvivalIntegral returns, for a raw error process of the given
	// rate (errors/second):
	//
	//	integral = int_0^Period exp(-rate * m(s)) ds
	//	exposure = rate * m(Period)
	//
	// where m(s) is the expected unmasked-error exposure accumulated by
	// time s (the integral of the vulnerability). These two numbers are
	// sufficient to compute the exact first-principles MTTF of the
	// component (see package softarch) without enumerating periods.
	SurvivalIntegral(rate float64) (integral, exposure float64)
}

// Segment is a half-open span [Start, End) of one period during which
// the instantaneous vulnerability is the constant Vuln.
type Segment struct {
	Start float64
	End   float64
	Vuln  float64
}

// Piecewise is a materialized trace: a sorted, contiguous sequence of
// constant-vulnerability segments covering [0, Period).
type Piecewise struct {
	period float64
	segs   []Segment
	// cumExp[i] is the vulnerability-weighted measure accumulated before
	// segment i: m(segs[i].Start).
	cumExp []float64
	avf    float64
	// surv memoizes the last SurvivalIntegral result. It sits behind a
	// pointer so Piecewise values can still be shallow-copied (Shift's
	// zero-offset fast path) without tripping vet's copylocks check;
	// sharing the cache between such copies is sound because they
	// describe the identical trace.
	surv *survivalCache
}

// survivalCache is a one-entry memo of SurvivalIntegral keyed by rate.
// The computation is deterministic and idempotent, so a lock-free
// publish via atomic.Pointer is safe under concurrent queries: the
// worst case is recomputing and re-publishing an identical entry.
type survivalCache struct {
	entry atomic.Pointer[survivalEntry]
}

type survivalEntry struct {
	rate               float64
	integral, exposure float64
}

var _ Trace = (*Piecewise)(nil)

// NewPiecewise builds a trace from segments. Segments must start at 0,
// be contiguous and sorted, end at a positive period, and have
// vulnerabilities in [0, 1]. Adjacent segments with equal vulnerability
// are merged.
func NewPiecewise(segs []Segment) (*Piecewise, error) {
	if len(segs) == 0 {
		return nil, errNoSegments
	}
	if segs[0].Start != 0 {
		return nil, fmt.Errorf("trace: first segment starts at %v, want 0", segs[0].Start)
	}
	merged := make([]Segment, 0, len(segs))
	for i, s := range segs {
		if s.End <= s.Start {
			return nil, fmt.Errorf("trace: segment %d is empty or reversed: [%v, %v)", i, s.Start, s.End)
		}
		if s.Vuln < 0 || s.Vuln > 1 || math.IsNaN(s.Vuln) {
			return nil, fmt.Errorf("trace: segment %d vulnerability %v outside [0,1]", i, s.Vuln)
		}
		if i > 0 && s.Start != segs[i-1].End { //soferr:allow floatprec segments must tile the period exactly; bitwise contiguity is the documented input contract and a gap must be rejected, not bridged
			return nil, fmt.Errorf("trace: gap between segment %d end %v and segment %d start %v", i-1, segs[i-1].End, i, s.Start)
		}
		if n := len(merged); n > 0 && merged[n-1].Vuln == s.Vuln { //soferr:allow floatprec coalescing bitwise-identical adjacent vulnerabilities; a near-equal miss only keeps an extra segment, never changes VulnAt
			merged[n-1].End = s.End
			continue
		}
		merged = append(merged, s)
	}
	p := &Piecewise{
		period: merged[len(merged)-1].End,
		segs:   merged,
	}
	p.finish()
	return p, nil
}

func (p *Piecewise) finish() {
	p.cumExp = make([]float64, len(p.segs)+1)
	var k numeric.KahanSum
	for i, s := range p.segs {
		p.cumExp[i] = k.Sum()
		k.Add((s.End - s.Start) * s.Vuln)
	}
	p.cumExp[len(p.segs)] = k.Sum()
	p.avf = k.Sum() / p.period
	p.surv = &survivalCache{}
}

// Period returns the loop length in seconds.
func (p *Piecewise) Period() float64 { return p.period }

// AVF returns the time-averaged vulnerability.
func (p *Piecewise) AVF() float64 { return p.avf }

// Segments returns a copy of the segment decomposition of one period.
func (p *Piecewise) Segments() []Segment {
	out := make([]Segment, len(p.segs))
	copy(out, p.segs)
	return out
}

// NumSegments returns the number of constant-vulnerability segments.
func (p *Piecewise) NumSegments() int { return len(p.segs) }

// VulnAt returns the vulnerability at absolute time t.
//
//soferr:hotpath
func (p *Piecewise) VulnAt(t float64) float64 {
	x := wrap(t, p.period)
	i := p.find(x)
	return p.segs[i].Vuln
}

// find returns the index of the segment containing x in [0, period).
func (p *Piecewise) find(x float64) int {
	i := sort.Search(len(p.segs), func(i int) bool { return p.segs[i].End > x })
	if i == len(p.segs) {
		i = len(p.segs) - 1
	}
	return i
}

// Exposure returns m(x): the expected unmasked exposure accumulated over
// [0, x) for x in [0, period].
func (p *Piecewise) Exposure(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= p.period {
		return p.cumExp[len(p.segs)]
	}
	i := p.find(x)
	s := p.segs[i]
	return p.cumExp[i] + (x-s.Start)*s.Vuln
}

// TotalExposure returns m(Period): the expected unmasked exposure
// accumulated over one full period (= AVF x Period).
func (p *Piecewise) TotalExposure() float64 { return p.cumExp[len(p.segs)] }

// InvertExposure returns the right-continuous generalized inverse of
// Exposure: the first instant x in [0, Period] at which the exposure
// accumulates beyond e (inf{x : m(x) > e}), clamped to Period for
// e >= m(Period). Zero-vulnerability segments accumulate no exposure,
// so the inverse jumps across them — a target landing exactly on a
// flat run maps to the start of the next vulnerable segment, which is
// what a first-arrival sampler needs: failures only land at vulnerable
// instants. One binary search over the precomputed cumExp table makes
// this O(log S).
//
// Exposure inversion is what lets a Monte-Carlo trial sample the first
// unmasked arrival in closed form (package montecarlo's Inverted
// engine): the thinned arrival process has cumulative hazard
// rate*m(t), so equating it to an Exp(1) draw reduces to inverting m.
//
//soferr:hotpath
func (p *Piecewise) InvertExposure(e float64) float64 {
	total := p.cumExp[len(p.segs)]
	if e < 0 {
		e = 0
	}
	if e >= total {
		return p.period
	}
	// Smallest segment i with cumExp[i+1] > e: the segment in whose
	// interior (exposure-wise) the target falls.
	i := sort.Search(len(p.segs), func(i int) bool { return p.cumExp[i+1] > e })
	s := p.segs[i]
	// cumExp[i+1] > cumExp[i] implies s.Vuln > 0.
	x := s.Start + (e-p.cumExp[i])/s.Vuln
	if x > s.End {
		x = s.End
	}
	return x
}

// ExposureQuantile returns the time by which a fraction q in [0, 1] of
// one period's total exposure has accumulated: InvertExposure(q *
// TotalExposure()). It is the quantile function of the distribution of
// the (wrapped) position of an unmasked arrival in the rate*Period -> 0
// limit (Theorem 1's uniform-raw-arrival regime).
func (p *Piecewise) ExposureQuantile(q float64) float64 {
	if q <= 0 {
		return p.InvertExposure(0)
	}
	if q >= 1 {
		return p.period
	}
	return p.InvertExposure(q * p.TotalExposure())
}

// SurvivalIntegral implements Trace. Because the integral walks every
// segment (O(S), and simulator traces have ~10^4 segments), the most
// recent (rate, result) pair is memoized: estimators that query one
// trace repeatedly at a fixed rate — the compiled System, SoftArch
// sweeps, LongLoop phases — pay the walk once.
func (p *Piecewise) SurvivalIntegral(rate float64) (integral, exposure float64) {
	if p.surv != nil {
		if e := p.surv.entry.Load(); e != nil && e.rate == rate { //soferr:allow floatprec memo-cache key identity; a near-miss rate only recomputes the walk, and a tolerance here would silently return the wrong rate's integral
			return e.integral, e.exposure
		}
	}
	integral, exposure = p.survivalIntegral(rate)
	if p.surv != nil {
		p.surv.entry.Store(&survivalEntry{rate: rate, integral: integral, exposure: exposure})
	}
	return integral, exposure
}

func (p *Piecewise) survivalIntegral(rate float64) (integral, exposure float64) {
	exposure = rate * p.cumExp[len(p.segs)]
	var sum numeric.KahanSum
	for i, s := range p.segs {
		length := s.End - s.Start
		pre := numeric.ExpNeg(rate * p.cumExp[i])
		if pre == 0 {
			break // everything after contributes nothing
		}
		slope := rate * s.Vuln
		if slope == 0 {
			sum.Add(pre * length)
			continue
		}
		// int_0^len e^(-pre - slope*u) du = pre * (1-e^(-slope*len))/slope
		sum.Add(pre * numeric.OneMinusExpNeg(slope*length) / slope)
	}
	return sum.Sum(), exposure
}

// wrap returns t modulo period in [0, period).
func wrap(t, period float64) float64 {
	x := math.Mod(t, period)
	if x < 0 {
		x += period
	}
	if x >= period { // Mod can return period due to rounding
		x = 0
	}
	return x
}
