package trace

import (
	"errors"
	"math"
	"testing"
)

// FuzzMergedExposure builds two busy/idle components from fuzzed
// parameters and merges them: NewMergedExposure must either return a
// branchable typed error (ErrIncommensurate, ErrMergedTooLarge, or the
// no-failure sentinel) or a table satisfying the inversion round-trip
// the Fused engine relies on.
func FuzzMergedExposure(f *testing.F) {
	f.Add(1.0, 0.5, 1.0, 0.25, 3.0, 7.0, 0.5)
	f.Add(1.0, 1.0, 0.5, 0.5, 1.0, 1.0, 0.0)
	f.Add(86400.0, 28800.0, 604800.0, 432000.0, 1e-8, 2e-8, 0.9)
	f.Add(0.3, 0.1, 0.7, 0.2, 1.0, 1.0, 0.1)
	f.Add(1e-6, 5e-7, 3.0, 1.5, 100.0, 1.0, 1.0)
	f.Add(2.0, 1.0, 2.0, 0.0, 5.0, 5.0, 0.25)
	f.Fuzz(func(t *testing.T, p1, b1, p2, b2, r1, r2, frac float64) {
		// Bound the domain to what callers can reach: the engines only
		// merge validated components with finite non-negative rates, and
		// gigantic rate x period products overflow float64 hazard sums
		// by design.
		for _, v := range []float64{p1, b1, p2, b2, r1, r2, frac} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if r1 < 0 || r2 < 0 || r1 > 1e12 || r2 > 1e12 || p1 > 1e9 || p2 > 1e9 {
			t.Skip()
		}
		tr1, err := BusyIdle(p1, b1)
		if err != nil {
			t.Skip()
		}
		tr2, err := BusyIdle(p2, b2)
		if err != nil {
			t.Skip()
		}
		m, err := NewMergedExposure([]float64{r1, r2}, []*Piecewise{tr1, tr2}, 1<<16)
		if err != nil {
			if !errors.Is(err, ErrIncommensurate) && !errors.Is(err, ErrMergedTooLarge) &&
				!errors.Is(err, errMergedNoFailure) {
				t.Fatalf("NewMergedExposure returned an untyped error: %v", err)
			}
			return
		}

		total := m.Total()
		if !(total > 0) || math.IsInf(total, 0) {
			t.Fatalf("merged table has unusable per-period hazard %v", total)
		}
		if m.Period() <= 0 {
			t.Fatalf("merged table has unusable period %v", m.Period())
		}

		// Inversion round-trip at a fuzzed hazard level in [0, Total].
		h := math.Mod(math.Abs(frac), 1) * total
		x := m.Invert(h)
		if x < 0 || x > m.Period() || math.IsNaN(x) {
			t.Fatalf("Invert(%v) = %v outside [0, %v]", h, x, m.Period())
		}
		if got := m.CumHazard(x); math.Abs(got-h) > 1e-9*total {
			t.Fatalf("CumHazard(Invert(%v)) = %v, want %v (period %v, segments %d)",
				h, got, h, m.Period(), m.NumSegments())
		}

		// Boundary contracts the sampler depends on.
		if got := m.CumHazard(0); got != 0 {
			t.Fatalf("CumHazard(0) = %v, want 0", got)
		}
		if got := m.Invert(total); got != m.Period() {
			t.Fatalf("Invert(Total) = %v, want Period %v", got, m.Period())
		}
	})
}
