package trace

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"github.com/soferr/soferr/internal/numeric"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errMergedShape     = errors.New("trace: NewMergedExposure needs equal non-zero numbers of rates and traces")
	errMergedNoFailure = errors.New("trace: NewMergedExposure with no component that can fail")
)

// MergedExposure is a system-level cumulative-hazard table: the
// superposition of several components' thinned Poisson processes,
// precomputed so that the first failure time of the whole series system
// can be sampled with one Exp(1) draw and one binary search.
//
// Each component i is a raw Poisson process of rate lambda_i thinned by
// a periodic vulnerability v_i(t); its failure process is inhomogeneous
// Poisson with cumulative hazard lambda_i * m_i(t). Independent Poisson
// processes superpose, so the system's first failure is the first
// arrival of the process with cumulative hazard
//
//	H(t) = sum_i lambda_i * m_i(t),
//
// which is itself periodic with period equal to the components'
// hyperperiod (the least common multiple of their periods). The merge
// aligns every component's segment grid on that hyperperiod and stores
// one sorted table of constant-hazard-rate segments with prefix sums,
// so H and its generalized inverse cost O(log S_total) — independent of
// the component count, the raw rates, and the AVFs.
//
// Construction requires commensurate periods. Every float64 is a
// dyadic rational, so the hyperperiod is computed exactly (math/big);
// "incommensurate" in practice means the exact hyperperiod would need
// more repetitions or merged segments than the configured cap, which
// returns ErrIncommensurate rather than materializing an enormous (or
// astronomically imprecise) table.
type MergedExposure struct {
	period float64
	// starts[i] is the start of segment i; starts[len] == period.
	starts []float64
	// haz[i] is the constant hazard rate (1/second) on segment i.
	haz []float64
	// cumHaz[i] is H(starts[i]); cumHaz[len] is the per-period hazard.
	cumHaz []float64
}

// ErrIncommensurate is returned by NewMergedExposure when the
// components' periods have no usable common hyperperiod: the exact LCM
// exists (float64 periods are rational) but would require more period
// repetitions or merged segments than the cap allows.
var ErrIncommensurate = errors.New("trace: periods are incommensurate (no usable common hyperperiod)")

// ErrMergedTooLarge is returned by NewMergedExposure when the periods
// are commensurate with a small repetition count but the merged table
// would still exceed the segment cap (many segment-rich traces).
var ErrMergedTooLarge = errors.New("trace: merged hazard table exceeds the segment cap")

// DefaultMaxMergedSegments bounds the merged table when the caller
// passes no explicit cap: large enough for hundreds of simulator traces
// (~10^4 segments each), small enough that a pathological period
// mixture fails fast instead of exhausting memory.
const DefaultMaxMergedSegments = 1 << 22

// maxMergedReps bounds the per-component repetition count inside one
// hyperperiod. Beyond ~2^40 repetitions the boundary arithmetic
// rep*period loses the low bits that distinguish adjacent segments, so
// larger LCMs are treated as incommensurate.
const maxMergedReps = 1 << 40

// NewMergedExposure merges components (rate_i, trace_i) into one
// system-level hazard table. Rates are in errors/second; every trace
// must be materialized (Piecewise). Components that can never fail
// (zero rate or zero AVF) are legal and contribute nothing.
// maxSegments caps the merged table (0 means
// DefaultMaxMergedSegments).
func NewMergedExposure(rates []float64, traces []*Piecewise, maxSegments int) (*MergedExposure, error) {
	if len(rates) != len(traces) || len(traces) == 0 {
		return nil, errMergedShape
	}
	if maxSegments <= 0 {
		maxSegments = DefaultMaxMergedSegments
	}
	// Drop components that contribute no hazard; they only widen the
	// hyperperiod for nothing.
	var live []*Piecewise
	var liveRates []float64
	for i, tr := range traces {
		if tr == nil {
			return nil, fmt.Errorf("trace: NewMergedExposure trace %d is nil", i)
		}
		if rates[i] < 0 || math.IsNaN(rates[i]) || math.IsInf(rates[i], 0) {
			return nil, fmt.Errorf("trace: NewMergedExposure rate %d is invalid: %v", i, rates[i])
		}
		if rates[i] == 0 || tr.AVF() == 0 {
			continue
		}
		live = append(live, tr)
		liveRates = append(liveRates, rates[i])
	}
	if len(live) == 0 {
		return nil, errMergedNoFailure
	}
	reps, period, err := hyperperiod(live, maxSegments)
	if err != nil {
		return nil, err
	}
	total := 0
	for i, tr := range live {
		n := reps[i] * int64(len(tr.segs))
		if n > int64(maxSegments) {
			return nil, fmt.Errorf("%w: component %d alone needs %d segments (cap %d)", ErrMergedTooLarge, i, n, maxSegments)
		}
		total += int(n)
		if total > maxSegments {
			return nil, fmt.Errorf("%w: %d+ segments (cap %d)", ErrMergedTooLarge, total, maxSegments)
		}
	}
	return mergeHazard(liveRates, live, reps, period)
}

// hyperperiod computes the exact least common multiple of the traces'
// periods (as dyadic rationals) and the per-trace repetition counts.
// LCMs needing more than maxMergedReps repetitions — or more merged
// boundaries than maxSegments, pre-checked on the repetition counts
// alone — are reported as incommensurate.
func hyperperiod(traces []*Piecewise, maxSegments int) (reps []int64, period float64, err error) {
	// Equal-period fast path (the common case: one workload family).
	equal := true
	for _, tr := range traces[1:] {
		if tr.period != traces[0].period { //soferr:allow floatprec equal-period fast-path probe; a last-ulp mismatch safely falls through to the dyadic LCM path, which handles it exactly
			equal = false
			break
		}
	}
	if equal {
		reps = make([]int64, len(traces))
		for i := range reps {
			reps[i] = 1
		}
		return reps, traces[0].period, nil
	}

	// Exact LCM over rationals: every float64 period is num/den with
	// den a power of two, and lcm(a/b, c/d) = lcm(a,c)/gcd(b,d).
	lcm := new(big.Rat)
	rats := make([]*big.Rat, len(traces))
	for i, tr := range traces {
		r := new(big.Rat).SetFloat64(tr.period)
		if r == nil || r.Sign() <= 0 {
			return nil, 0, fmt.Errorf("trace: NewMergedExposure trace %d has unusable period %v", i, tr.period)
		}
		rats[i] = r
		if i == 0 {
			lcm.Set(r)
			continue
		}
		num := new(big.Int).Mul(lcm.Num(), r.Num())
		num.Div(num, new(big.Int).GCD(nil, nil, lcm.Num(), r.Num()))
		den := new(big.Int).GCD(nil, nil, lcm.Denom(), r.Denom())
		lcm.SetFrac(num, den)
		// Abort early once the hyperperiod is already absurd relative to
		// the shortest period: the reps check below would catch it, but
		// the big.Int products can get expensive first.
		if num.BitLen()-den.BitLen() > 128 {
			return nil, 0, fmt.Errorf("%w: exact LCM needs %d-bit numerators", ErrIncommensurate, num.BitLen())
		}
	}
	reps = make([]int64, len(traces))
	for i, r := range rats {
		q := new(big.Rat).Quo(lcm, r)
		if !q.IsInt() {
			// Cannot happen by construction; guard anyway.
			return nil, 0, fmt.Errorf("%w: internal LCM error", ErrIncommensurate)
		}
		n := q.Num()
		if !n.IsInt64() || n.Int64() > maxMergedReps {
			return nil, 0, fmt.Errorf("%w: trace %d would repeat %s times per hyperperiod", ErrIncommensurate, i, n)
		}
		reps[i] = n.Int64()
		// Each repetition contributes at least one boundary, so this
		// cheap pre-check rejects huge LCMs before any merging.
		if reps[i] > int64(maxSegments) {
			return nil, 0, fmt.Errorf("%w: trace %d repeats %d times per hyperperiod (segment cap %d)", ErrIncommensurate, i, reps[i], maxSegments)
		}
	}
	// The float hyperperiod: reps[0] * period[0]. The exact rational
	// may not be a float64; anchoring on one component keeps all of that
	// component's boundaries exact and the others within an ulp, which
	// the sweep clamps.
	return reps, float64(reps[0]) * traces[0].period, nil
}

// mergeHazard sweeps all traces' segment boundaries (each trace
// repeated reps[i] times) across [0, period) and emits constant-hazard
// segments with prefix sums.
func mergeHazard(rates []float64, traces []*Piecewise, reps []int64, period float64) (*MergedExposure, error) {
	// Per-trace cursor: repetition index and segment index.
	type cursor struct {
		rep int64
		seg int
	}
	cur := make([]cursor, len(traces))
	// next returns the absolute end of the cursor's current segment.
	next := func(i int) float64 {
		c := cur[i]
		return float64(c.rep)*traces[i].period + traces[i].segs[c.seg].End
	}
	m := &MergedExposure{}
	var sum numeric.KahanSum
	t := 0.0
	for t < period {
		h := 0.0
		bound := period
		for i := range traces {
			h += rates[i] * traces[i].segs[cur[i].seg].Vuln
			if b := next(i); b < bound {
				bound = b
			}
		}
		if bound <= t {
			// Rounding produced a non-advancing boundary (distinct
			// periods differing in their last ulp); force progress by
			// skipping the stalled cursors below without emitting an
			// empty segment.
			bound = math.Nextafter(t, math.Inf(1))
		}
		if bound > period {
			bound = period
		}
		if n := len(m.haz); n > 0 && m.haz[n-1] == h { //soferr:allow floatprec coalescing bitwise-identical adjacent hazard rows; a near-equal miss only costs one extra table row, never a wrong value
			// Merge adjacent equal-hazard spans.
		} else {
			m.starts = append(m.starts, t)
			m.haz = append(m.haz, h)
			m.cumHaz = append(m.cumHaz, sum.Sum())
		}
		sum.Add(h * (bound - t))
		t = bound
		for i := range traces {
			for next(i) <= t {
				c := &cur[i]
				c.seg++
				if c.seg == len(traces[i].segs) {
					c.seg = 0
					c.rep++
					if c.rep == reps[i] {
						// Exhausted: park on the last segment so the
						// remaining sweep (at most an ulp) reads its
						// final vulnerability.
						c.rep = reps[i] - 1
						c.seg = len(traces[i].segs) - 1
						break
					}
				}
			}
		}
	}
	m.period = period
	m.starts = append(m.starts, period)
	m.cumHaz = append(m.cumHaz, sum.Sum())
	return m, nil
}

// Period returns the hyperperiod in seconds.
func (m *MergedExposure) Period() float64 { return m.period }

// NumSegments returns the number of constant-hazard segments.
func (m *MergedExposure) NumSegments() int { return len(m.haz) }

// Total returns H(Period): the cumulative hazard of one hyperperiod.
func (m *MergedExposure) Total() float64 { return m.cumHaz[len(m.haz)] }

// CumHazard returns H(x) for x in [0, Period]: the expected number of
// system failures (unmasked arrivals across all components) in [0, x).
//
//soferr:hotpath
func (m *MergedExposure) CumHazard(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= m.period {
		return m.cumHaz[len(m.haz)]
	}
	i := sort.Search(len(m.haz), func(i int) bool { return m.starts[i+1] > x })
	if i == len(m.haz) {
		i = len(m.haz) - 1
	}
	return m.cumHaz[i] + (x-m.starts[i])*m.haz[i]
}

// SurvivalIntegral returns the one-hyperperiod survival integral
//
//	int_0^Period exp(-H(s)) ds
//
// in closed form: H is piecewise linear, so each constant-hazard
// segment contributes exp(-H(start)) * (1-exp(-haz*len))/haz (or
// exp(-H(start))*len where the hazard is zero), summed with
// compensated accumulation. Together with Total() this is sufficient
// for the exact system MTTF: the integrand is periodic up to the
// geometric factor exp(-H(Period)) per hyperperiod, so
//
//	MTTF = SurvivalIntegral() / (1 - exp(-Total())).
//
// Segments past the point where exp(-H(start)) underflows to zero
// contribute nothing and are skipped.
func (m *MergedExposure) SurvivalIntegral() float64 {
	var sum numeric.KahanSum
	for i, h := range m.haz {
		length := m.starts[i+1] - m.starts[i]
		pre := numeric.ExpNeg(m.cumHaz[i])
		if pre == 0 {
			break // everything after contributes nothing
		}
		if h == 0 {
			sum.Add(pre * length)
			continue
		}
		// int_0^len e^(-H(start) - h*u) du = pre * (1-e^(-h*len))/h
		sum.Add(pre * numeric.OneMinusExpNeg(h*length) / h)
	}
	return sum.Sum()
}

// Invert is the right-continuous generalized inverse of CumHazard: the
// first instant x in [0, Period] at which the hazard accumulates beyond
// h, clamped to Period for h >= Total. Zero-hazard segments accumulate
// nothing, so the inverse jumps across them — failures only land at
// instants where some component is vulnerable. One binary search over
// the prefix sums makes this O(log S).
//
//soferr:hotpath
func (m *MergedExposure) Invert(h float64) float64 {
	total := m.cumHaz[len(m.haz)]
	if h < 0 {
		h = 0
	}
	if h >= total {
		return m.period
	}
	i := sort.Search(len(m.haz), func(i int) bool { return m.cumHaz[i+1] > h })
	// cumHaz[i+1] > cumHaz[i] implies haz[i] > 0.
	x := m.starts[i] + (h-m.cumHaz[i])/m.haz[i]
	if x > m.starts[i+1] {
		x = m.starts[i+1]
	}
	return x
}

// InvertSortedInto resolves a whole batch of hazard targets in one
// forward sweep: hs must be sorted ascending, and the inverse of hs[p]
// is written to res[idx[p]] (idx scatters results back to the caller's
// original order after an argsort). Each element receives exactly
// Invert(hs[p]) — bit-identical, same segment, same arithmetic — but
// the lookup is a monotone galloping cursor instead of a fresh binary
// search: from the previous element's segment, doubling steps bracket
// the next target and a binary search pins it inside the bracket, so
// each element costs O(log gap) where gap is the segment distance to
// the previous target — O(B) total when sorted targets cluster, and
// never worse than B fresh O(log S) searches when they spread across a
// segment-rich table. This is the kernel behind the Monte-Carlo
// batched trial path; FuzzBatchedInversion asserts the equivalence on
// random tables.
//
// hs and idx must have equal length and res must be at least as long as
// every idx entry requires; unsorted input silently produces values for
// wrong segments (the caller owns the sort).
//
//soferr:hotpath
func (m *MergedExposure) InvertSortedInto(hs []float64, idx []int, res []float64) {
	total := m.cumHaz[len(m.haz)]
	last := len(m.haz) - 1
	c := 0
	for p, h := range hs {
		if h < 0 {
			h = 0 // clamping preserves the sorted order
		}
		if h >= total {
			// Sorted input: every later element lands here too, but the
			// per-element check keeps the loop branch-free of state.
			res[idx[p]] = m.period
			continue
		}
		// Find the first segment at or after the cursor whose cumulative
		// hazard exceeds h — the exact index Invert's sort.Search finds
		// (h < total guarantees one exists). Gallop past known-too-small
		// indices, then binary-search the bracket: every index below
		// c+off/2+1 was seen to be too small, and c+off is either past
		// the end or known to suffice.
		if m.cumHaz[c+1] <= h {
			off := 1
			for c+off < last && m.cumHaz[c+off+1] <= h {
				off <<= 1
			}
			lo, hi := c+off/2+1, c+off
			if hi > last {
				hi = last
			}
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if m.cumHaz[mid+1] <= h {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			c = lo
		}
		x := m.starts[c] + (h-m.cumHaz[c])/m.haz[c]
		if x > m.starts[c+1] {
			x = m.starts[c+1]
		}
		res[idx[p]] = x
	}
}
