package trace

import (
	"math"
	"testing"
)

// materializeLoop flattens a LongLoop's phases into one Piecewise so
// the lazy exposure methods can be property-tested against the exact
// segment walk.
func materializeLoop(t *testing.T, phases ...LoopPhase) *Piecewise {
	t.Helper()
	var flat []*Piecewise
	for _, ph := range phases {
		for i := int64(0); i < ph.Reps; i++ {
			flat = append(flat, ph.Inner)
		}
	}
	p, err := Concat(flat...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLongLoopExposureMatchesMaterialized(t *testing.T) {
	inner1, err := BusyIdle(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := NewPiecewise([]Segment{
		{Start: 0, End: 1, Vuln: 0.25},
		{Start: 1, End: 2, Vuln: 0},
		{Start: 2, End: 4, Vuln: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	phases := []LoopPhase{{Inner: inner1, Reps: 4}, {Inner: inner2, Reps: 3}}
	ll, err := NewLongLoop(phases...)
	if err != nil {
		t.Fatal(err)
	}
	mat := materializeLoop(t, phases...)

	if math.Abs(ll.TotalExposure()-mat.TotalExposure()) > 1e-12 {
		t.Errorf("TotalExposure: lazy %v vs materialized %v", ll.TotalExposure(), mat.TotalExposure())
	}
	for x := 0.0; x <= ll.Period(); x += 0.0625 {
		if got, want := ll.Exposure(x), mat.Exposure(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Exposure(%v): lazy %v vs materialized %v", x, got, want)
		}
	}
	total := ll.TotalExposure()
	for q := 0.0; q <= 1.0; q += 1.0 / 128 {
		e := q * total
		if got, want := ll.InvertExposure(e), mat.InvertExposure(e); math.Abs(got-want) > 1e-9 {
			t.Fatalf("InvertExposure(%v): lazy %v vs materialized %v", e, got, want)
		}
	}
	// Out-of-range targets clamp like Piecewise.
	if got := ll.InvertExposure(-1); got != mat.InvertExposure(-1) {
		t.Errorf("InvertExposure(-1) = %v, want %v", got, mat.InvertExposure(-1))
	}
	if got := ll.InvertExposure(total + 1); got != ll.Period() {
		t.Errorf("InvertExposure(total+1) = %v, want period %v", got, ll.Period())
	}
}

func TestLongLoopInvertExposureSkipsIdlePhases(t *testing.T) {
	busy, err := BusyIdle(2, 2) // always vulnerable
	if err != nil {
		t.Fatal(err)
	}
	idle, err := NewPiecewise([]Segment{{Start: 0, End: 2, Vuln: 0}})
	if err != nil {
		t.Fatal(err)
	}
	ll, err := NewLongLoop(
		LoopPhase{Inner: busy, Reps: 1},
		LoopPhase{Inner: idle, Reps: 5},
		LoopPhase{Inner: busy, Reps: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Exposure 2 is reached exactly at the end of the first busy phase;
	// the inverse must jump across the idle phase to t = 12.
	if got := ll.InvertExposure(2); math.Abs(got-12) > 1e-12 {
		t.Errorf("InvertExposure(2) = %v, want 12 (start of next vulnerable phase)", got)
	}
	// Round trip inside the second busy phase.
	if got := ll.Exposure(13); math.Abs(got-3) > 1e-12 {
		t.Errorf("Exposure(13) = %v, want 3", got)
	}
}

func TestSurvivalIntegralCacheTransparent(t *testing.T) {
	p, err := NewPiecewise([]Segment{
		{Start: 0, End: 1, Vuln: 0.5},
		{Start: 1, End: 3, Vuln: 0},
		{Start: 3, End: 4, Vuln: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// First call computes, second hits the memo; both must agree with a
	// fresh uncached walk.
	i1, e1 := p.SurvivalIntegral(0.3)
	i2, e2 := p.SurvivalIntegral(0.3)
	if i1 != i2 || e1 != e2 {
		t.Errorf("cached result differs: (%v,%v) vs (%v,%v)", i1, e1, i2, e2)
	}
	wi, we := p.survivalIntegral(0.3)
	if i1 != wi || e1 != we {
		t.Errorf("cache poisoned result: (%v,%v) vs direct (%v,%v)", i1, e1, wi, we)
	}
	// A different rate must not be served from the stale entry.
	i3, e3 := p.SurvivalIntegral(0.7)
	wi3, we3 := p.survivalIntegral(0.7)
	if i3 != wi3 || e3 != we3 {
		t.Errorf("rate change served stale cache: (%v,%v) vs direct (%v,%v)", i3, e3, wi3, we3)
	}
	if i3 == i1 {
		t.Error("different rates produced identical integrals (cache key ignored)")
	}
}
