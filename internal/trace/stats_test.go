package trace

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
)

func TestStatsBusyIdle(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	st, err := ComputeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Period != 10 || math.Abs(st.AVF-0.4) > 1e-12 {
		t.Errorf("basics wrong: %+v", st)
	}
	if st.MaxVulnRun != 4 {
		t.Errorf("MaxVulnRun = %v, want 4", st.MaxVulnRun)
	}
	if st.MaxMaskedRun != 6 {
		t.Errorf("MaxMaskedRun = %v, want 6", st.MaxMaskedRun)
	}
	if st.MeanVulnRun != 4 {
		t.Errorf("MeanVulnRun = %v, want 4", st.MeanVulnRun)
	}
	// Variance of a 0/1 trace with mean 0.4 is 0.4*0.6 = 0.24.
	if numeric.RelErr(st.VulnVariance, 0.24) > 1e-12 {
		t.Errorf("VulnVariance = %v, want 0.24", st.VulnVariance)
	}
	if numeric.RelErr(st.BreakRate, 0.4/6) > 1e-12 {
		t.Errorf("BreakRate = %v, want %v", st.BreakRate, 0.4/6)
	}
}

func TestStatsConstantVulnIsExactForAVF(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 10, 0.3}})
	st, err := ComputeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.VulnVariance > 1e-15 {
		t.Errorf("VulnVariance = %v, want 0", st.VulnVariance)
	}
	if !math.IsInf(st.BreakRate, 1) {
		t.Errorf("BreakRate = %v, want +Inf (AVF exact at every rate)", st.BreakRate)
	}
}

func TestStatsWrapMergesRuns(t *testing.T) {
	// Vulnerable at both ends: [0,2) and [8,10) are one 4-second run
	// across the wrap point.
	p, err := Periodic(10, []Interval{{0, 2}, {8, 10}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxVulnRun != 4 {
		t.Errorf("MaxVulnRun = %v, want 4 (wrapped)", st.MaxVulnRun)
	}
	if st.MaxMaskedRun != 6 {
		t.Errorf("MaxMaskedRun = %v, want 6", st.MaxMaskedRun)
	}
}

func TestStatsBreakRatePredictsAVFError(t *testing.T) {
	// The heuristic must be conservative-ish: at BreakRate the true
	// AVF-step error should be within a factor of a few of 10%.
	p := mustBusyIdle(t, 86400, 43200)
	st, err := ComputeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	i, e := p.SurvivalIntegral(st.BreakRate)
	real := i / numeric.OneMinusExpNeg(e)
	avfMTTF := 1 / (st.BreakRate * p.AVF())
	relErr := math.Abs(avfMTTF-real) / real
	if relErr < 0.02 || relErr > 0.5 {
		t.Errorf("AVF error at BreakRate = %v, want near 10%%", relErr)
	}
}

func TestStatsNil(t *testing.T) {
	if _, err := ComputeStats(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestStatsFractionalRegfileLikeTrace(t *testing.T) {
	levels := []float64{0.1, 0.2, 0.6, 0.7, 0.1, 0.05}
	p, err := FromLevels(levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxVulnRun != 2 { // the 0.6,0.7 stretch
		t.Errorf("MaxVulnRun = %v, want 2", st.MaxVulnRun)
	}
	if st.VulnVariance <= 0 {
		t.Errorf("VulnVariance = %v, want > 0", st.VulnVariance)
	}
}
