package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/soferr/soferr/internal/numeric"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errNonPositivePeriod  = errors.New("trace: non-positive period")
	errEmptyBitTrace      = errors.New("trace: empty bit trace")
	errNonPositiveCycle   = errors.New("trace: non-positive cycle duration")
	errEmptyLevelTrace    = errors.New("trace: empty level trace")
	errWeightedUnionShape = errors.New("trace: WeightedUnion needs equal non-zero numbers of weights and traces")
	errAllWeightsZero     = errors.New("trace: all weights zero")
	errConcatEmpty        = errors.New("trace: Concat of nothing")
	errLongLoopEmpty      = errors.New("trace: LongLoop with no phases")
)

// Interval is a half-open vulnerable span [Start, End) used by the
// schedule constructors.
type Interval struct {
	Start float64
	End   float64
}

// Periodic builds a 0/1 trace of the given period in which the listed
// intervals are vulnerable (unmasked) and everything else is masked.
// Intervals must be sorted, non-overlapping, and within [0, period].
func Periodic(period float64, vulnerable []Interval) (*Piecewise, error) {
	if period <= 0 {
		return nil, errNonPositivePeriod
	}
	segs := make([]Segment, 0, 2*len(vulnerable)+1)
	cursor := 0.0
	for i, iv := range vulnerable {
		if iv.Start < cursor {
			return nil, fmt.Errorf("trace: interval %d overlaps or is unsorted", i)
		}
		if iv.End <= iv.Start || iv.End > period {
			return nil, fmt.Errorf("trace: interval %d out of range: [%v, %v)", i, iv.Start, iv.End)
		}
		if iv.Start > cursor {
			segs = append(segs, Segment{Start: cursor, End: iv.Start, Vuln: 0})
		}
		segs = append(segs, Segment{Start: iv.Start, End: iv.End, Vuln: 1})
		cursor = iv.End
	}
	if cursor < period {
		segs = append(segs, Segment{Start: cursor, End: period, Vuln: 0})
	}
	return NewPiecewise(segs)
}

// BusyIdle builds the paper's canonical synthetic loop (Section 3.1.2):
// vulnerable for the first busy seconds of each period, masked for the
// rest.
func BusyIdle(period, busy float64) (*Piecewise, error) {
	if busy < 0 || busy > period {
		return nil, fmt.Errorf("trace: busy %v outside [0, %v]", busy, period)
	}
	if busy == 0 {
		return Never(period)
	}
	return Periodic(period, []Interval{{Start: 0, End: busy}})
}

// Always returns a trace that is vulnerable during the whole period:
// every raw error causes failure (AVF = 1).
func Always(period float64) (*Piecewise, error) {
	return NewPiecewise([]Segment{{Start: 0, End: period, Vuln: 1}})
}

// Never returns a trace that masks every raw error (AVF = 0).
func Never(period float64) (*Piecewise, error) {
	return NewPiecewise([]Segment{{Start: 0, End: period, Vuln: 0}})
}

// FromBits builds a cycle-granularity 0/1 trace: bit i covers
// [i, i+1) * cycleSeconds and is vulnerable when true. Runs of equal
// bits are compressed.
func FromBits(bits []bool, cycleSeconds float64) (*Piecewise, error) {
	if len(bits) == 0 {
		return nil, errEmptyBitTrace
	}
	if cycleSeconds <= 0 {
		return nil, errNonPositiveCycle
	}
	segs := make([]Segment, 0, 64)
	runStart := 0
	for i := 1; i <= len(bits); i++ {
		if i < len(bits) && bits[i] == bits[runStart] {
			continue
		}
		v := 0.0
		if bits[runStart] {
			v = 1.0
		}
		segs = append(segs, Segment{
			Start: float64(runStart) * cycleSeconds,
			End:   float64(i) * cycleSeconds,
			Vuln:  v,
		})
		runStart = i
	}
	return NewPiecewise(segs)
}

// FromLevels builds a trace from per-cycle vulnerability levels in
// [0, 1] (e.g. liveRegisters/totalRegisters for a register file). Runs
// of equal levels are compressed.
func FromLevels(levels []float64, cycleSeconds float64) (*Piecewise, error) {
	if len(levels) == 0 {
		return nil, errEmptyLevelTrace
	}
	if cycleSeconds <= 0 {
		return nil, errNonPositiveCycle
	}
	segs := make([]Segment, 0, 64)
	runStart := 0
	for i := 1; i <= len(levels); i++ {
		if i < len(levels) && levels[i] == levels[runStart] {
			continue
		}
		segs = append(segs, Segment{
			Start: float64(runStart) * cycleSeconds,
			End:   float64(i) * cycleSeconds,
			Vuln:  levels[runStart],
		})
		runStart = i
	}
	return NewPiecewise(segs)
}

// WeightedUnion combines k unit traces of a processor into one
// processor-level trace. A raw error striking the processor belongs to
// unit u with probability weight[u]/sum(weights) (weights are the units'
// raw error rates), and is unmasked iff that unit is vulnerable, so the
// processor's instantaneous vulnerability is the weighted average of the
// units'. All traces must share the same period.
//
// This reduction is exact for both the Monte-Carlo engine (Poisson
// thinning) and the survival integral (rates add), and is what lets a
// multi-unit processor be treated as a single component.
func WeightedUnion(weights []float64, traces []*Piecewise) (*Piecewise, error) {
	if len(weights) != len(traces) || len(traces) == 0 {
		return nil, errWeightedUnionShape
	}
	period := traces[0].period
	totalW := 0.0
	for i, w := range traces {
		if w.period != period { //soferr:allow floatprec period identity is the documented contract: union members must share one period bit for bit, and a near-miss must be rejected, not tolerated
			return nil, fmt.Errorf("trace: period mismatch: trace %d has %v, want %v", i, w.period, period)
		}
		if weights[i] < 0 {
			return nil, fmt.Errorf("trace: negative weight %v", weights[i])
		}
		totalW += weights[i]
	}
	if totalW == 0 {
		return nil, errAllWeightsZero
	}
	idx := make([]int, len(traces))
	segs := make([]Segment, 0, len(traces[0].segs))
	cursor := 0.0
	for cursor < period {
		// Current vulnerability and the nearest segment end among traces.
		v := 0.0
		next := period
		for k, tr := range traces {
			s := tr.segs[idx[k]]
			v += weights[k] / totalW * s.Vuln
			if s.End < next {
				next = s.End
			}
		}
		if v > 1 {
			v = 1
		}
		segs = append(segs, Segment{Start: cursor, End: next, Vuln: v})
		cursor = next
		for k, tr := range traces {
			if idx[k] < len(tr.segs)-1 && tr.segs[idx[k]].End <= cursor {
				idx[k]++
			}
		}
	}
	return NewPiecewise(segs)
}

// Concat joins traces back to back into a single period equal to the sum
// of the parts (used to build the paper's "combined" workload from two
// benchmark halves).
func Concat(traces ...*Piecewise) (*Piecewise, error) {
	if len(traces) == 0 {
		return nil, errConcatEmpty
	}
	var segs []Segment
	offset := 0.0
	for _, tr := range traces {
		for _, s := range tr.segs {
			segs = append(segs, Segment{Start: offset + s.Start, End: offset + s.End, Vuln: s.Vuln})
		}
		offset += tr.period
	}
	return NewPiecewise(segs)
}

// LongLoop is a lazy trace: a sequence of phases, each repeating an
// inner materialized trace a (possibly enormous) number of times. It
// represents workloads like the paper's "combined" schedule — a SPEC
// benchmark trace with a sub-millisecond period looping for twelve hours
// — without materializing billions of segments.
type LongLoop struct {
	phases []LoopPhase
	starts []float64 // phase start offsets
	// cumExp[i] is the exposure accumulated before phase i:
	// sum over earlier phases of Reps x Inner.TotalExposure().
	cumExp []float64
	period float64
	avf    float64
}

// LoopPhase repeats Inner Reps times.
type LoopPhase struct {
	Inner *Piecewise
	Reps  int64
}

var _ Trace = (*LongLoop)(nil)

// NewLongLoop builds a lazy loop trace from phases.
func NewLongLoop(phases ...LoopPhase) (*LongLoop, error) {
	if len(phases) == 0 {
		return nil, errLongLoopEmpty
	}
	l := &LongLoop{
		phases: make([]LoopPhase, len(phases)),
		starts: make([]float64, len(phases)+1),
		cumExp: make([]float64, len(phases)+1),
	}
	copy(l.phases, phases)
	var dur, exp numeric.KahanSum
	for i, ph := range phases {
		if ph.Reps <= 0 {
			return nil, fmt.Errorf("trace: phase %d has %d repetitions", i, ph.Reps)
		}
		if ph.Inner == nil {
			return nil, fmt.Errorf("trace: phase %d has nil inner trace", i)
		}
		l.starts[i] = dur.Sum()
		l.cumExp[i] = exp.Sum()
		d := float64(ph.Reps) * ph.Inner.Period()
		dur.Add(d)
		exp.Add(float64(ph.Reps) * ph.Inner.TotalExposure())
	}
	l.starts[len(phases)] = dur.Sum()
	l.cumExp[len(phases)] = exp.Sum()
	l.period = dur.Sum()
	l.avf = exp.Sum() / l.period
	return l, nil
}

// RepeatFor returns the number of repetitions needed for inner to fill
// at least the given duration (at least one).
func RepeatFor(inner *Piecewise, duration float64) int64 {
	n := int64(math.Ceil(duration / inner.Period()))
	if n < 1 {
		n = 1
	}
	return n
}

// Period returns the total loop length.
func (l *LongLoop) Period() float64 { return l.period }

// AVF returns the duration-weighted average of the phase AVFs.
func (l *LongLoop) AVF() float64 { return l.avf }

// VulnAt locates the phase containing t and defers to the inner trace.
//
//soferr:hotpath
func (l *LongLoop) VulnAt(t float64) float64 {
	x := wrap(t, l.period)
	i := l.findPhase(x)
	return l.phases[i].Inner.VulnAt(x - l.starts[i])
}

// findPhase returns the index of the phase containing x in [0, period).
func (l *LongLoop) findPhase(x float64) int {
	lo, hi := 0, len(l.phases)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.starts[mid+1] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(l.phases) {
		lo = len(l.phases) - 1
	}
	return lo
}

// TotalExposure returns m(Period): the expected unmasked exposure of
// one full loop (= AVF x Period), composed from the phases without
// enumerating repetitions.
func (l *LongLoop) TotalExposure() float64 { return l.cumExp[len(l.phases)] }

// Exposure returns m(x), the exposure accumulated over [0, x) for x in
// [0, Period]: whole inner repetitions contribute multiples of the
// inner trace's total exposure, and the remainder is one inner lookup.
func (l *LongLoop) Exposure(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= l.period {
		return l.cumExp[len(l.phases)]
	}
	i := l.findPhase(x)
	ph := l.phases[i]
	inPhase := x - l.starts[i]
	k := math.Floor(inPhase / ph.Inner.Period())
	if k > float64(ph.Reps-1) {
		k = float64(ph.Reps - 1)
	}
	rem := inPhase - k*ph.Inner.Period()
	return l.cumExp[i] + k*ph.Inner.TotalExposure() + ph.Inner.Exposure(rem)
}

// InvertExposure is the right-continuous generalized inverse of
// Exposure, mirroring Piecewise.InvertExposure: the first instant at
// which the loop's exposure accumulates beyond e, clamped to Period for
// e >= TotalExposure(). With it, LongLoop satisfies the Monte-Carlo
// engine's ExposureInverter capability, so day-scale combined schedules
// sample first unmasked arrivals in closed form instead of thinning
// billions of raw arrivals.
//
//soferr:hotpath
func (l *LongLoop) InvertExposure(e float64) float64 {
	total := l.cumExp[len(l.phases)]
	if e < 0 {
		e = 0
	}
	if e >= total {
		return l.period
	}
	// First phase that accumulates beyond e; phases with zero exposure
	// (idle inner traces) are skipped exactly as flat segments are.
	i := sort.Search(len(l.phases), func(i int) bool { return l.cumExp[i+1] > e })
	ph := l.phases[i]
	inPhase := e - l.cumExp[i]
	perRep := ph.Inner.TotalExposure() // > 0 because cumExp advances
	k := math.Floor(inPhase / perRep)
	if k > float64(ph.Reps-1) {
		k = float64(ph.Reps - 1)
	}
	return l.starts[i] + k*ph.Inner.Period() + ph.Inner.InvertExposure(inPhase-k*perRep)
}

// SurvivalIntegral composes the phases analytically: within one phase of
// r repetitions of an inner trace with per-iteration survival integral I
// and per-iteration exposure e, the phase contributes
// I * (1 - q^r)/(1 - q) with q = exp(-e), scaled by the survival
// accumulated in earlier phases.
func (l *LongLoop) SurvivalIntegral(rate float64) (integral, exposure float64) {
	var sum numeric.KahanSum
	expSoFar := 0.0 // rate-weighted exposure accumulated before this phase
	for _, ph := range l.phases {
		inner, e := ph.Inner.SurvivalIntegral(rate)
		r := float64(ph.Reps)
		pre := numeric.ExpNeg(expSoFar)
		if pre > 0 {
			var phaseIntegral float64
			if e == 0 {
				phaseIntegral = inner * r
			} else {
				// sum_{i=0}^{r-1} e^(-i*e) = (1 - e^(-r*e)) / (1 - e^(-e))
				phaseIntegral = inner * numeric.OneMinusExpNeg(r*e) / numeric.OneMinusExpNeg(e)
			}
			sum.Add(pre * phaseIntegral)
		}
		expSoFar += r * e
	}
	return sum.Sum(), expSoFar
}
