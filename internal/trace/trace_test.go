package trace

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
)

func mustPiecewise(t *testing.T, segs []Segment) *Piecewise {
	t.Helper()
	p, err := NewPiecewise(segs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustBusyIdle(t *testing.T, period, busy float64) *Piecewise {
	t.Helper()
	p, err := BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPiecewiseValidation(t *testing.T) {
	cases := []struct {
		name string
		segs []Segment
	}{
		{"empty", nil},
		{"start not zero", []Segment{{Start: 1, End: 2, Vuln: 0}}},
		{"reversed", []Segment{{Start: 0, End: 0, Vuln: 0}}},
		{"gap", []Segment{{0, 1, 0}, {2, 3, 1}}},
		{"vuln above one", []Segment{{0, 1, 1.5}}},
		{"vuln below zero", []Segment{{0, 1, -0.1}}},
		{"vuln NaN", []Segment{{0, 1, math.NaN()}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewPiecewise(tt.segs); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestNewPiecewiseMergesEqualRuns(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 1, 1}, {1, 2, 1}, {2, 3, 0}})
	if p.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", p.NumSegments())
	}
	if p.Period() != 3 {
		t.Errorf("Period = %v, want 3", p.Period())
	}
}

func TestBusyIdleAVF(t *testing.T) {
	for _, tt := range []struct{ period, busy, want float64 }{
		{10, 5, 0.5},
		{86400, 43200, 0.5},
		{7, 5, 5.0 / 7},
		{10, 0, 0},
		{10, 10, 1},
	} {
		p := mustBusyIdle(t, tt.period, tt.busy)
		if numeric.RelErr(p.AVF(), tt.want) > 1e-12 && p.AVF() != tt.want {
			t.Errorf("BusyIdle(%v,%v).AVF = %v, want %v", tt.period, tt.busy, p.AVF(), tt.want)
		}
	}
}

func TestVulnAtAndWrap(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	for _, tt := range []struct{ t, want float64 }{
		{0, 1}, {3.9, 1}, {4, 0}, {9.99, 0},
		{10, 1}, {13.5, 1}, {14.5, 0}, // wrapped
		{100000000003, 1}, // deep wrap
	} {
		if got := p.VulnAt(tt.t); got != tt.want {
			t.Errorf("VulnAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestExposure(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 2, 1}, {2, 6, 0}, {6, 10, 0.5}})
	for _, tt := range []struct{ x, want float64 }{
		{0, 0}, {1, 1}, {2, 2}, {4, 2}, {6, 2}, {8, 3}, {10, 4}, {11, 4},
	} {
		if got := p.Exposure(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Exposure(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if numeric.RelErr(p.AVF(), 0.4) > 1e-12 {
		t.Errorf("AVF = %v, want 0.4", p.AVF())
	}
}

// brute-force survival integral by quadrature for cross-validation.
func bruteSurvival(tr Trace, rate float64, exposureAt func(float64) float64) float64 {
	val, err := numeric.Integrate(func(s float64) float64 {
		return math.Exp(-rate * exposureAt(s))
	}, 0, tr.Period(), 1e-10)
	if err != nil {
		return math.NaN()
	}
	return val
}

func TestSurvivalIntegralMatchesQuadrature(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 2, 1}, {2, 6, 0}, {6, 10, 0.25}})
	for _, rate := range []float64{1e-6, 0.01, 0.3, 2, 50} {
		gotI, gotE := p.SurvivalIntegral(rate)
		wantI := bruteSurvival(p, rate, p.Exposure)
		wantE := rate * p.AVF() * p.Period()
		if numeric.RelErr(gotI, wantI) > 1e-8 {
			t.Errorf("rate %v: integral = %v, quadrature = %v", rate, gotI, wantI)
		}
		if numeric.RelErr(gotE, wantE) > 1e-12 {
			t.Errorf("rate %v: exposure = %v, want %v", rate, gotE, wantE)
		}
	}
}

func TestSurvivalIntegralZeroVuln(t *testing.T) {
	p, err := Never(5)
	if err != nil {
		t.Fatal(err)
	}
	i, e := p.SurvivalIntegral(3)
	if i != 5 || e != 0 {
		t.Errorf("Never: integral %v exposure %v, want 5, 0", i, e)
	}
}

func TestSurvivalIntegralAlways(t *testing.T) {
	p, err := Always(5)
	if err != nil {
		t.Fatal(err)
	}
	// int_0^5 e^(-rate*s) ds.
	const rate = 0.7
	i, e := p.SurvivalIntegral(rate)
	want := numeric.OneMinusExpNeg(rate*5) / rate
	if numeric.RelErr(i, want) > 1e-12 {
		t.Errorf("Always: integral = %v, want %v", i, want)
	}
	if numeric.RelErr(e, rate*5) > 1e-12 {
		t.Errorf("Always: exposure = %v, want %v", e, rate*5)
	}
}

func TestFromBits(t *testing.T) {
	bits := []bool{true, true, false, false, false, true}
	p, err := FromBits(bits, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Period() != 3 {
		t.Errorf("Period = %v, want 3", p.Period())
	}
	if p.NumSegments() != 3 {
		t.Errorf("NumSegments = %d, want 3", p.NumSegments())
	}
	if numeric.RelErr(p.AVF(), 0.5) > 1e-12 {
		t.Errorf("AVF = %v, want 0.5", p.AVF())
	}
	if p.VulnAt(0.9) != 1 || p.VulnAt(1.1) != 0 || p.VulnAt(2.6) != 1 {
		t.Error("VulnAt lookups wrong")
	}
}

func TestFromLevels(t *testing.T) {
	levels := []float64{0.25, 0.25, 0.75, 1}
	p, err := FromLevels(levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 3 {
		t.Errorf("NumSegments = %d, want 3", p.NumSegments())
	}
	want := (0.25*2 + 0.75 + 1) / 4
	if numeric.RelErr(p.AVF(), want) > 1e-12 {
		t.Errorf("AVF = %v, want %v", p.AVF(), want)
	}
}

func TestWeightedUnion(t *testing.T) {
	a := mustBusyIdle(t, 10, 5) // vuln on [0,5)
	b := mustPiecewise(t, []Segment{{0, 2, 0}, {2, 8, 1}, {8, 10, 0}})
	u, err := WeightedUnion([]float64{1, 3}, []*Piecewise{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: [0,2): 1/4; [2,5): 1/4+3/4=1; [5,8): 3/4; [8,10): 0.
	for _, tt := range []struct{ t, want float64 }{
		{1, 0.25}, {3, 1}, {6, 0.75}, {9, 0},
	} {
		if got := u.VulnAt(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("union VulnAt(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	wantAVF := (2*0.25 + 3*1 + 3*0.75 + 0) / 10
	if numeric.RelErr(u.AVF(), wantAVF) > 1e-12 {
		t.Errorf("union AVF = %v, want %v", u.AVF(), wantAVF)
	}
}

func TestWeightedUnionPeriodMismatch(t *testing.T) {
	a := mustBusyIdle(t, 10, 5)
	b := mustBusyIdle(t, 20, 5)
	if _, err := WeightedUnion([]float64{1, 1}, []*Piecewise{a, b}); err == nil {
		t.Error("expected period mismatch error")
	}
}

func TestWeightedUnionSingleIdentity(t *testing.T) {
	a := mustPiecewise(t, []Segment{{0, 3, 0.5}, {3, 7, 0}, {7, 9, 1}})
	u, err := WeightedUnion([]float64{42}, []*Piecewise{a})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(u.AVF(), a.AVF()) > 1e-12 {
		t.Errorf("identity union AVF %v != %v", u.AVF(), a.AVF())
	}
	for _, x := range []float64{0.1, 3.5, 8.2} {
		if u.VulnAt(x) != a.VulnAt(x) {
			t.Errorf("identity union VulnAt(%v) differs", x)
		}
	}
}

func TestConcat(t *testing.T) {
	a := mustBusyIdle(t, 4, 2)
	b := mustBusyIdle(t, 6, 6)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Period() != 10 {
		t.Errorf("Period = %v, want 10", c.Period())
	}
	wantAVF := (2.0 + 6.0) / 10
	if numeric.RelErr(c.AVF(), wantAVF) > 1e-12 {
		t.Errorf("AVF = %v, want %v", c.AVF(), wantAVF)
	}
	if c.VulnAt(1) != 1 || c.VulnAt(3) != 0 || c.VulnAt(5) != 1 || c.VulnAt(9.5) != 1 {
		t.Error("Concat VulnAt wrong")
	}
}

func TestLongLoopMatchesMaterialized(t *testing.T) {
	inner := mustPiecewise(t, []Segment{{0, 1, 1}, {1, 3, 0}, {3, 4, 0.5}})
	ll, err := NewLongLoop(LoopPhase{Inner: inner, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Concat(inner, inner, inner)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(ll.Period(), mat.Period()) > 1e-12 {
		t.Errorf("period %v vs %v", ll.Period(), mat.Period())
	}
	if numeric.RelErr(ll.AVF(), mat.AVF()) > 1e-12 {
		t.Errorf("AVF %v vs %v", ll.AVF(), mat.AVF())
	}
	for x := 0.05; x < 12; x += 0.37 {
		if ll.VulnAt(x) != mat.VulnAt(x) {
			t.Errorf("VulnAt(%v): %v vs %v", x, ll.VulnAt(x), mat.VulnAt(x))
		}
	}
	for _, rate := range []float64{0.001, 0.1, 1, 10} {
		li, le := ll.SurvivalIntegral(rate)
		mi, me := mat.SurvivalIntegral(rate)
		if numeric.RelErr(li, mi) > 1e-9 {
			t.Errorf("rate %v: integral %v vs %v", rate, li, mi)
		}
		if numeric.RelErr(le, me) > 1e-9 {
			t.Errorf("rate %v: exposure %v vs %v", rate, le, me)
		}
	}
}

func TestLongLoopTwoPhases(t *testing.T) {
	a := mustBusyIdle(t, 2, 1)
	b := mustBusyIdle(t, 3, 3)
	ll, err := NewLongLoop(LoopPhase{Inner: a, Reps: 2}, LoopPhase{Inner: b, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Concat(a, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.05; x < 7; x += 0.23 {
		if ll.VulnAt(x) != mat.VulnAt(x) {
			t.Errorf("VulnAt(%v): %v vs %v", x, ll.VulnAt(x), mat.VulnAt(x))
		}
	}
	for _, rate := range []float64{0.01, 0.5, 5} {
		li, le := ll.SurvivalIntegral(rate)
		mi, me := mat.SurvivalIntegral(rate)
		if numeric.RelErr(li, mi) > 1e-9 || numeric.RelErr(le, me) > 1e-9 {
			t.Errorf("rate %v: (%v,%v) vs (%v,%v)", rate, li, le, mi, me)
		}
	}
}

func TestLongLoopHugeRepsFinite(t *testing.T) {
	// Twelve hours of a 1 ms benchmark loop: 4.32e7 repetitions. The
	// survival integral must stay finite and the AVF exact.
	inner := mustBusyIdle(t, 1e-3, 0.25e-3)
	reps := RepeatFor(inner, 12*3600)
	ll, err := NewLongLoop(LoopPhase{Inner: inner, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	if numeric.RelErr(ll.AVF(), 0.25) > 1e-12 {
		t.Errorf("AVF = %v, want 0.25", ll.AVF())
	}
	i, e := ll.SurvivalIntegral(1e-6)
	if math.IsNaN(i) || math.IsInf(i, 0) || i <= 0 {
		t.Errorf("integral = %v", i)
	}
	wantE := 1e-6 * 0.25 * ll.Period()
	if numeric.RelErr(e, wantE) > 1e-9 {
		t.Errorf("exposure = %v, want %v", e, wantE)
	}
}

func TestRepeatFor(t *testing.T) {
	inner := mustBusyIdle(t, 2, 1)
	if got := RepeatFor(inner, 10); got != 5 {
		t.Errorf("RepeatFor = %d, want 5", got)
	}
	if got := RepeatFor(inner, 0.5); got != 1 {
		t.Errorf("RepeatFor small = %d, want 1", got)
	}
	if got := RepeatFor(inner, 11); got != 6 {
		t.Errorf("RepeatFor uneven = %d, want 6", got)
	}
}

func TestPeriodicValidation(t *testing.T) {
	if _, err := Periodic(0, nil); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := Periodic(10, []Interval{{5, 4}}); err == nil {
		t.Error("reversed interval should fail")
	}
	if _, err := Periodic(10, []Interval{{0, 5}, {3, 7}}); err == nil {
		t.Error("overlap should fail")
	}
	if _, err := Periodic(10, []Interval{{0, 11}}); err == nil {
		t.Error("out of range should fail")
	}
}

func TestSegmentsReturnsCopy(t *testing.T) {
	p := mustBusyIdle(t, 10, 5)
	s := p.Segments()
	s[0].Vuln = 0.123
	if p.Segments()[0].Vuln == 0.123 {
		t.Error("Segments exposed internal state")
	}
}

func TestTotalExposure(t *testing.T) {
	p := mustPiecewise(t, []Segment{{0, 2, 1}, {2, 6, 0}, {6, 10, 0.5}})
	if got := p.TotalExposure(); math.Abs(got-4) > 1e-12 {
		t.Errorf("TotalExposure = %v, want 4", got)
	}
	if math.Abs(p.TotalExposure()-p.AVF()*p.Period()) > 1e-12 {
		t.Error("TotalExposure != AVF * Period")
	}
}

func TestInvertExposureRoundTrip(t *testing.T) {
	// Exposure(InvertExposure(e)) == e for every target in [0, total):
	// the inverse must land exactly on the accumulated-exposure curve,
	// including targets inside fractional-vulnerability segments.
	p := mustPiecewise(t, []Segment{
		{0, 1, 0}, {1, 3, 0.5}, {3, 5, 0}, {5, 6, 1}, {6, 10, 0.25},
	})
	total := p.TotalExposure() // 0*1 + 0.5*2 + 0 + 1 + 0.25*4 = 3
	if math.Abs(total-3) > 1e-12 {
		t.Fatalf("total exposure = %v, want 3", total)
	}
	for e := 0.0; e < total; e += 0.01 {
		x := p.InvertExposure(e)
		if back := p.Exposure(x); math.Abs(back-e) > 1e-12 {
			t.Fatalf("Exposure(InvertExposure(%v)) = %v", e, back)
		}
	}
	// The opposite round trip holds wherever m is strictly increasing
	// (vulnerable instants); across zero-vulnerability gaps the inverse
	// collapses to the first instant with the same accumulated exposure.
	for _, x := range []float64{1.25, 2, 2.99, 5.5, 7, 9.999} {
		if got := p.InvertExposure(p.Exposure(x)); math.Abs(got-x) > 1e-9 {
			t.Errorf("InvertExposure(Exposure(%v)) = %v", x, got)
		}
	}
	// Inside masked gaps m is flat, so the (right-continuous) inverse
	// jumps forward to the next vulnerable instant: failures can only
	// land where the trace is vulnerable.
	for _, x := range []float64{0.5, 3.5, 4.999} {
		got := p.InvertExposure(p.Exposure(x))
		if got < x {
			t.Errorf("InvertExposure(Exposure(%v)) = %v, want >= %v", x, got, x)
		}
		if p.VulnAt(got) == 0 && got != p.Period() {
			t.Errorf("inverse of a gap target landed inside a masked span at %v", got)
		}
	}
}

func TestInvertExposureSegmentBoundaries(t *testing.T) {
	p := mustPiecewise(t, []Segment{
		{0, 1, 0}, {1, 3, 0.5}, {3, 5, 0}, {5, 6, 1}, {6, 10, 0.25},
	})
	cases := []struct{ e, want float64 }{
		{-1, 1},  // clamped; first vulnerable instant
		{0, 1},   // exposure starts accumulating at t=1
		{1, 5},   // boundary target skips the [3,5) masked gap
		{2, 6},   // end of the unit-vulnerability segment
		{2.5, 8}, // interior of the trailing 0.25 segment
		{3, 10},  // full exposure: end of period
		{99, 10}, // clamped above
	}
	for _, tt := range cases {
		if got := p.InvertExposure(tt.e); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("InvertExposure(%v) = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestExposureQuantile(t *testing.T) {
	p := mustBusyIdle(t, 10, 4) // vulnerable [0,4), total exposure 4
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 1}, {0.5, 2}, {1, 10},
	}
	for _, tt := range cases {
		if got := p.ExposureQuantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("ExposureQuantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestExposureAtPeriodEdges(t *testing.T) {
	// The wrap/find edge cases at t == Period: Exposure saturates,
	// VulnAt wraps to t=0, and the inverse of the saturated exposure is
	// the period itself, not a wrapped zero.
	p := mustBusyIdle(t, 10, 4)
	if got := p.Exposure(p.Period()); math.Abs(got-p.TotalExposure()) > 1e-12 {
		t.Errorf("Exposure(Period) = %v, want %v", got, p.TotalExposure())
	}
	if got := p.VulnAt(p.Period()); got != p.VulnAt(0) {
		t.Errorf("VulnAt(Period) = %v, want VulnAt(0) = %v", got, p.VulnAt(0))
	}
	if got := p.InvertExposure(p.TotalExposure()); got != p.Period() {
		t.Errorf("InvertExposure(total) = %v, want Period %v", got, p.Period())
	}
	// A period-boundary time from deep wrapping must stay in range.
	big := 1e9 * p.Period()
	if v := p.VulnAt(big); v != p.VulnAt(0) {
		t.Errorf("VulnAt(%v) = %v, want %v", big, v, p.VulnAt(0))
	}
}
