package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errBadMagic = errors.New("trace: not a trace file (bad magic)")
)

// Binary encoding of a Piecewise trace, for caching simulator output
// between runs. Format (little endian):
//
//	magic  uint32  'S','F','T','R'
//	ver    uint32  1
//	nsegs  uint64
//	then per segment: end float64, vuln float64
//
// Segment starts are implied by contiguity from zero, which also makes
// corrupt files detectable.
const (
	traceMagic   = 0x52544653 // "SFTR" little-endian
	traceVersion = 1
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (p *Piecewise) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint32(traceVersion)); err != nil {
		return n, err
	}
	if err := write(uint64(len(p.segs))); err != nil {
		return n, err
	}
	for _, s := range p.segs {
		if err := write(s.End); err != nil {
			return n, err
		}
		if err := write(s.Vuln); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadPiecewise deserializes a trace written by WriteTo.
func ReadPiecewise(r io.Reader) (*Piecewise, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != traceMagic {
		return nil, errBadMagic
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var nsegs uint64
	if err := binary.Read(br, binary.LittleEndian, &nsegs); err != nil {
		return nil, fmt.Errorf("trace: read segment count: %w", err)
	}
	const maxSegs = 1 << 30
	if nsegs == 0 || nsegs > maxSegs {
		return nil, fmt.Errorf("trace: implausible segment count %d", nsegs)
	}
	segs := make([]Segment, nsegs)
	start := 0.0
	for i := range segs {
		var end, vuln float64
		if err := binary.Read(br, binary.LittleEndian, &end); err != nil {
			return nil, fmt.Errorf("trace: read segment %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &vuln); err != nil {
			return nil, fmt.Errorf("trace: read segment %d: %w", i, err)
		}
		if math.IsNaN(end) || end <= start {
			return nil, fmt.Errorf("trace: segment %d end %v not after %v", i, end, start)
		}
		segs[i] = Segment{Start: start, End: end, Vuln: vuln}
		start = end
	}
	return NewPiecewise(segs)
}
