package trace

import (
	"errors"
	"math"
)

// Sentinel errors of this package; callers branch with errors.Is.
var (
	errShiftNil = errors.New("trace: Shift of nil trace")
)

// Shift returns a copy of p whose pattern is delayed by offset seconds:
// the new trace's vulnerability at time t equals p's at time t - offset.
// Offsets of any sign are accepted and wrapped into one period.
//
// Phase shifts extend the paper's model: its cluster experiments assume
// all processors run in phase, which concentrates failures in the
// shared busy window and is exactly what breaks SOFR. Shifting
// component traces lets a user model staggered or time-zoned fleets and
// measure how quickly SOFR becomes accurate again as phases decorrelate
// (see the phased-cluster tests and example).
func Shift(p *Piecewise, offset float64) (*Piecewise, error) {
	if p == nil {
		return nil, errShiftNil
	}
	period := p.period
	off := math.Mod(offset, period)
	if off < 0 {
		off += period
	}
	if off == 0 {
		out := *p
		return &out, nil
	}
	// The new trace starts inside segment k of the original: emit the
	// tail [cut, period) first, then the head [0, cut).
	cut := period - off
	segs := make([]Segment, 0, len(p.segs)+1)
	for _, s := range p.segs {
		if s.End <= cut {
			continue
		}
		start := math.Max(s.Start, cut)
		segs = append(segs, Segment{Start: start - cut, End: s.End - cut, Vuln: s.Vuln})
	}
	for _, s := range p.segs {
		if s.Start >= cut {
			break
		}
		end := math.Min(s.End, cut)
		segs = append(segs, Segment{Start: s.Start + off, End: end + off, Vuln: s.Vuln})
	}
	return NewPiecewise(segs)
}
