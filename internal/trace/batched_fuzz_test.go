package trace

import (
	"errors"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/xrand"
)

// FuzzBatchedInversion builds a merged hazard table from fuzzed
// busy/idle components, draws a fuzzed batch of hazard targets
// (including out-of-range and duplicate values), and asserts that the
// batched forward sweep returns bit-identical results to a loop of
// scalar Invert calls — the equivalence the Monte-Carlo batched trial
// kernel relies on for its determinism contract.
func FuzzBatchedInversion(f *testing.F) {
	f.Add(1.0, 0.5, 1.0, 0.25, 3.0, 7.0, uint64(1), uint8(16))
	f.Add(86400.0, 28800.0, 604800.0, 432000.0, 1e-8, 2e-8, uint64(42), uint8(64))
	f.Add(2.0, 1.0, 2.0, 0.0, 5.0, 5.0, uint64(7), uint8(255))
	f.Add(0.3, 0.1, 0.7, 0.2, 1.0, 1.0, uint64(99), uint8(1))
	f.Add(1e-6, 5e-7, 3.0, 1.5, 100.0, 1.0, uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, p1, b1, p2, b2, r1, r2 float64, seed uint64, n uint8) {
		for _, v := range []float64{p1, b1, p2, b2, r1, r2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		if r1 < 0 || r2 < 0 || r1 > 1e12 || r2 > 1e12 || p1 > 1e9 || p2 > 1e9 {
			t.Skip()
		}
		tr1, err := BusyIdle(p1, b1)
		if err != nil {
			t.Skip()
		}
		tr2, err := BusyIdle(p2, b2)
		if err != nil {
			t.Skip()
		}
		m, err := NewMergedExposure([]float64{r1, r2}, []*Piecewise{tr1, tr2}, 1<<16)
		if err != nil {
			if !errors.Is(err, ErrIncommensurate) && !errors.Is(err, ErrMergedTooLarge) &&
				!errors.Is(err, errMergedNoFailure) {
				t.Fatalf("NewMergedExposure returned an untyped error: %v", err)
			}
			return
		}

		// A fuzzed batch of hazard targets: mostly in [0, Total), with
		// deliberate duplicates, negatives, and beyond-total values.
		total := m.Total()
		batch := int(n)
		hs := make([]float64, batch)
		idx := make([]int, batch)
		r := xrand.New(seed)
		for i := range hs {
			switch i % 8 {
			case 5:
				hs[i] = -r.Float64() // below range: clamps to 0
			case 6:
				hs[i] = total * (1 + r.Float64()) // beyond range: clamps to period
			case 7:
				if i > 0 {
					hs[i] = hs[i-1] // exact duplicate
				}
			default:
				hs[i] = r.Float64() * total
			}
			idx[i] = i
		}
		want := make([]float64, batch)
		for i, h := range hs {
			want[i] = m.Invert(h)
		}

		numeric.SortWithIndex(hs, idx)
		got := make([]float64, batch)
		m.InvertSortedInto(hs, idx, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batched sweep diverged at %d: got %v, want %v (batch %d, segments %d)",
					i, got[i], want[i], batch, m.NumSegments())
			}
		}
	})
}
