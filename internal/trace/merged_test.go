package trace

import (
	"errors"
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
)

func mergedBusyIdle(t *testing.T, period, busy float64) *Piecewise {
	t.Helper()
	p, err := BusyIdle(period, busy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMergedExposureSingleComponentMatchesScaledExposure(t *testing.T) {
	p := mergedBusyIdle(t, 10, 4)
	const rate = 0.25
	m, err := NewMergedExposure([]float64{rate}, []*Piecewise{p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != p.Period() {
		t.Fatalf("period = %v, want %v", m.Period(), p.Period())
	}
	if got, want := m.Total(), rate*p.TotalExposure(); numeric.RelErr(got, want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}
	for _, x := range []float64{0, 0.5, 3.999, 4, 7, 10} {
		if got, want := m.CumHazard(x), rate*p.Exposure(x); numeric.RelErr(got, want) > 1e-12 {
			t.Errorf("CumHazard(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMergedExposureEqualPeriodsMatchesSum(t *testing.T) {
	// Equal periods take the no-repetition fast path; the merged hazard
	// must still be the rate-weighted sum of the exposures.
	traces := []*Piecewise{
		mergedBusyIdle(t, 12, 3),
		mergedBusyIdle(t, 12, 8),
	}
	frac, err := NewPiecewise([]Segment{{Start: 0, End: 6, Vuln: 0.25}, {Start: 6, End: 12, Vuln: 0.75}})
	if err != nil {
		t.Fatal(err)
	}
	traces = append(traces, frac)
	rates := []float64{0.1, 0.03, 1.5}
	m, err := NewMergedExposure(rates, traces, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 12; x += 0.37 {
		want := 0.0
		for i, tr := range traces {
			want += rates[i] * tr.Exposure(x)
		}
		if got := m.CumHazard(x); numeric.RelErr(got, want) > 1e-12 {
			t.Errorf("CumHazard(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMergedExposureCommensuratePeriods(t *testing.T) {
	// Periods 6 and 9 have hyperperiod 18: trace a repeats 3 times,
	// trace b twice, and the merged hazard is the sum of the wrapped
	// per-component hazards at every point.
	a := mergedBusyIdle(t, 6, 2)
	b := mergedBusyIdle(t, 9, 5)
	rates := []float64{0.4, 0.07}
	m, err := NewMergedExposure(rates, []*Piecewise{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 18 {
		t.Fatalf("hyperperiod = %v, want 18", m.Period())
	}
	exposureAt := func(tr *Piecewise, x float64) float64 {
		k := math.Floor(x / tr.Period())
		return k*tr.TotalExposure() + tr.Exposure(x-k*tr.Period())
	}
	for x := 0.0; x <= 18; x += 0.173 {
		want := rates[0]*exposureAt(a, x) + rates[1]*exposureAt(b, x)
		if got := m.CumHazard(x); numeric.RelErr(got, want) > 1e-9 {
			t.Errorf("CumHazard(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestMergedExposureInvertRoundTrip(t *testing.T) {
	// Property: Invert is the right-continuous generalized inverse of
	// CumHazard. For any hazard target h in [0, Total):
	//   CumHazard(Invert(h)) == h  (up to float tolerance), and
	// for any time t inside a vulnerable span,
	//   Invert(CumHazard(t)) == t.
	a := mergedBusyIdle(t, 6, 2)
	b := mergedBusyIdle(t, 9, 5)
	frac, err := NewPiecewise([]Segment{{Start: 0, End: 1, Vuln: 0}, {Start: 1, End: 3, Vuln: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMergedExposure([]float64{0.4, 0.07, 0.9}, []*Piecewise{a, b, frac}, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Total()
	for i := 0; i <= 1000; i++ {
		h := total * float64(i) / 1000.5
		x := m.Invert(h)
		if x < 0 || x > m.Period() {
			t.Fatalf("Invert(%v) = %v outside [0, %v]", h, x, m.Period())
		}
		if got := m.CumHazard(x); math.Abs(got-h) > 1e-9*total {
			t.Errorf("CumHazard(Invert(%v)) = %v", h, got)
		}
	}
	// Times strictly inside vulnerable spans round-trip exactly (within
	// an ulp of the division): hazard there is strictly increasing.
	for _, x := range []float64{0.5, 1.9, 2.5, 6.5, 10.3, 13.1} {
		back := m.Invert(m.CumHazard(x))
		if math.Abs(back-x) > 1e-9*m.Period() {
			t.Errorf("Invert(CumHazard(%v)) = %v", x, back)
		}
	}
	// Edges: h below 0 clamps to the first vulnerable instant, h at or
	// beyond Total clamps to the period.
	if got := m.Invert(-1); got != m.Invert(0) {
		t.Errorf("Invert(-1) = %v, want %v", got, m.Invert(0))
	}
	if got := m.Invert(total); got != m.Period() {
		t.Errorf("Invert(Total) = %v, want Period %v", got, m.Period())
	}
	if got := m.Invert(total * 2); got != m.Period() {
		t.Errorf("Invert(2*Total) = %v, want Period %v", got, m.Period())
	}
}

func TestMergedExposureSkipsIdleSpans(t *testing.T) {
	// A hazard target landing exactly on a flat (all-idle) span maps to
	// the start of the next vulnerable segment: failures only land at
	// vulnerable instants.
	a := mergedBusyIdle(t, 10, 2) // vulnerable [0,2)
	m, err := NewMergedExposure([]float64{1}, []*Piecewise{a}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// CumHazard(2) == CumHazard(7) == total of the busy span; inverting
	// it returns the end of the busy span (right-continuous inverse,
	// clamped into the vulnerable segment).
	h := m.CumHazard(5)
	if x := m.Invert(h - 1e-12); x > 2 {
		t.Errorf("Invert just below the plateau = %v, want <= 2", x)
	}
}

func TestMergedExposureIncommensurate(t *testing.T) {
	// Periods 1 and math.Pi are commensurate as exact rationals (every
	// float64 is), but their exact LCM needs astronomically many
	// repetitions: the merge must refuse with ErrIncommensurate instead
	// of materializing it.
	a := mergedBusyIdle(t, 1, 0.5)
	b := mergedBusyIdle(t, math.Pi, 1)
	_, err := NewMergedExposure([]float64{1, 1}, []*Piecewise{a, b}, 0)
	if !errors.Is(err, ErrIncommensurate) {
		t.Fatalf("err = %v, want ErrIncommensurate", err)
	}
	// Same for periods whose ratio is a rational with a huge
	// denominator (0.1 is not exactly representable).
	c := mergedBusyIdle(t, 0.1, 0.05)
	d := mergedBusyIdle(t, 0.3, 0.1)
	if _, err := NewMergedExposure([]float64{1, 1}, []*Piecewise{c, d}, 0); err != nil {
		// 0.1 and 0.3 as float64s still have a small exact LCM (their
		// low bits match); accept either outcome but require a typed
		// error when it is one.
		if !errors.Is(err, ErrIncommensurate) && !errors.Is(err, ErrMergedTooLarge) {
			t.Fatalf("err = %v, want typed merge error", err)
		}
	}
}

func TestMergedExposureSegmentCap(t *testing.T) {
	// Commensurate periods whose merged table exceeds the cap must fail
	// with ErrMergedTooLarge (or the reps pre-check's ErrIncommensurate
	// when the repetition count alone blows the cap) — never OOM.
	a := mergedBusyIdle(t, 1, 0.5)
	b := mergedBusyIdle(t, 1024, 100)
	_, err := NewMergedExposure([]float64{1, 1}, []*Piecewise{a, b}, 64)
	if !errors.Is(err, ErrMergedTooLarge) && !errors.Is(err, ErrIncommensurate) {
		t.Fatalf("err = %v, want ErrMergedTooLarge or ErrIncommensurate", err)
	}
	// The same merge with an adequate cap succeeds: 1024 reps of a
	// 2-segment trace plus one 3-segment trace.
	m, err := NewMergedExposure([]float64{1, 1}, []*Piecewise{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period() != 1024 {
		t.Errorf("hyperperiod = %v, want 1024", m.Period())
	}
}

func TestMergedExposureValidation(t *testing.T) {
	p := mergedBusyIdle(t, 10, 4)
	if _, err := NewMergedExposure(nil, nil, 0); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := NewMergedExposure([]float64{1, 2}, []*Piecewise{p}, 0); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewMergedExposure([]float64{math.NaN()}, []*Piecewise{p}, 0); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := NewMergedExposure([]float64{-1}, []*Piecewise{p}, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewMergedExposure([]float64{1}, []*Piecewise{nil}, 0); err == nil {
		t.Error("nil trace accepted")
	}
	never, err := Never(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMergedExposure([]float64{1}, []*Piecewise{never}, 0); err == nil {
		t.Error("merge of only never-failing components accepted")
	}
	// Never-failing components alongside live ones are dropped, not
	// fatal.
	m, err := NewMergedExposure([]float64{0, 1}, []*Piecewise{p, p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Total(), p.TotalExposure(); numeric.RelErr(got, want) > 1e-12 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestMergedSurvivalIntegralMatchesComponent(t *testing.T) {
	// One component: the merged survival integral must equal the
	// trace's own survivalIntegral at the component's rate, which is
	// separately validated against quadrature and Derivation 1.
	for _, tt := range []struct {
		name               string
		rate, period, busy float64
	}{
		{"small hazard", 1e-6, 24, 8},
		{"moderate hazard", 0.05, 10, 5},
		{"large hazard", 2.0, 10, 9},
	} {
		t.Run(tt.name, func(t *testing.T) {
			tr := mergedBusyIdle(t, tt.period, tt.busy)
			m, err := NewMergedExposure([]float64{tt.rate}, []*Piecewise{tr}, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := tr.SurvivalIntegral(tt.rate)
			if got := m.SurvivalIntegral(); numeric.RelErr(got, want) > 1e-13 {
				t.Errorf("merged survival integral %v, component integral %v (rel err %v)",
					got, want, numeric.RelErr(got, want))
			}
		})
	}
}

func TestMergedSurvivalIntegralQuadrature(t *testing.T) {
	// Multi-component commensurate periods: the closed-form segment
	// walk must match adaptive quadrature of exp(-H(t)) over one
	// hyperperiod.
	a := mergedBusyIdle(t, 6, 2)
	b := mergedBusyIdle(t, 8, 5)
	c := mergedBusyIdle(t, 12, 7)
	rates := []float64{0.03, 0.01, 0.02}
	m, err := NewMergedExposure(rates, []*Piecewise{a, b, c}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := numeric.Integrate(func(x float64) float64 {
		return math.Exp(-m.CumHazard(x))
	}, 0, m.Period(), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SurvivalIntegral(); numeric.RelErr(got, want) > 1e-9 {
		t.Errorf("merged survival integral %v, quadrature %v (rel err %v)",
			got, want, numeric.RelErr(got, want))
	}
}

func TestMergedSurvivalIntegralUnderflowTail(t *testing.T) {
	// Once exp(-H(start)) underflows, later segments contribute
	// nothing; the walk must stop rather than accumulate NaN/denormal
	// noise. A hazard of 200/segment drives cumHaz past 745 after a few
	// segments.
	segs := make([]Segment, 0, 16)
	for i := 0; i < 8; i++ {
		s := float64(2 * i)
		segs = append(segs, Segment{Start: s, End: s + 1, Vuln: 1}, Segment{Start: s + 1, End: s + 2, Vuln: 0})
	}
	tr, err := NewPiecewise(segs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMergedExposure([]float64{200}, []*Piecewise{tr}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := m.SurvivalIntegral()
	if math.IsNaN(got) || got <= 0 || got > 1.0/200*1.0001 {
		t.Errorf("survival integral %v, want ~1/rate and finite", got)
	}
	want, _ := tr.SurvivalIntegral(200)
	if numeric.RelErr(got, want) > 1e-13 {
		t.Errorf("survival integral %v, component integral %v", got, want)
	}
}
