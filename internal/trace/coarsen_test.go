package trace

import (
	"math"
	"testing"

	"github.com/soferr/soferr/internal/numeric"
	"github.com/soferr/soferr/internal/xrand"
)

func randomDenseTrace(t *testing.T, nSegs int, seed uint64) *Piecewise {
	t.Helper()
	r := xrand.New(seed)
	segs := make([]Segment, nSegs)
	cursor := 0.0
	for i := range segs {
		length := 0.5 + r.Float64()
		v := 0.0
		if r.Bool(0.4) {
			v = r.Float64()
		}
		segs[i] = Segment{Start: cursor, End: cursor + length, Vuln: v}
		cursor += length
	}
	p, err := NewPiecewise(segs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCoarsenPreservesAVF(t *testing.T) {
	p := randomDenseTrace(t, 5000, 1)
	for _, max := range []int{10, 100, 999} {
		c, err := Coarsen(p, max)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumSegments() > max {
			t.Errorf("coarsened to %d segments, cap %d", c.NumSegments(), max)
		}
		if math.Abs(c.AVF()-p.AVF()) > 1e-12 {
			t.Errorf("max=%d: AVF drifted %v -> %v", max, p.AVF(), c.AVF())
		}
		if numeric.RelErr(c.Period(), p.Period()) > 1e-12 {
			t.Errorf("max=%d: period drifted", max)
		}
	}
}

func TestCoarsenIdentityWhenSmall(t *testing.T) {
	p := mustBusyIdle(t, 10, 4)
	c, err := Coarsen(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c != p {
		t.Error("small trace should be returned unchanged")
	}
}

func TestCoarsenSurvivalIntegralClose(t *testing.T) {
	// At realistic rates (rate x window << 1) the survival integral
	// must be essentially unchanged.
	p := randomDenseTrace(t, 20000, 2)
	c, err := Coarsen(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	window := p.Period() / float64(c.NumSegments())
	for _, rate := range []float64{1e-8, 1e-5, 1e-3} {
		iP, eP := p.SurvivalIntegral(rate)
		iC, eC := c.SurvivalIntegral(rate)
		if numeric.RelErr(eC, eP) > 1e-12 {
			t.Errorf("rate %v: exposure drifted %v -> %v", rate, eP, eC)
		}
		// Distortion is second order in rate x window (small constant),
		// on top of a ~1e-10 float-summation noise floor from the very
		// different segment counts.
		bound := 5 * (rate * window) * (rate * window)
		if bound < 1e-9 {
			bound = 1e-9
		}
		if got := numeric.RelErr(iC, iP); got > bound {
			t.Errorf("rate %v: survival integral drifted %v -> %v (rel %v, bound %v)",
				rate, iP, iC, got, bound)
		}
	}
}

func TestCoarsenVulnInRange(t *testing.T) {
	p := randomDenseTrace(t, 3000, 3)
	c, err := Coarsen(p, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Segments() {
		if s.Vuln < 0 || s.Vuln > 1 {
			t.Fatalf("vulnerability %v out of range", s.Vuln)
		}
	}
}

func TestCoarsenValidation(t *testing.T) {
	if _, err := Coarsen(nil, 10); err == nil {
		t.Error("nil trace accepted")
	}
	p := mustBusyIdle(t, 10, 4)
	if _, err := Coarsen(p, 0); err == nil {
		t.Error("zero cap accepted")
	}
}
