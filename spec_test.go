package soferr_test

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/soferr/soferr"
)

func busyIdleSpec(rate float64) soferr.Spec {
	return soferr.Spec{
		Name: "batch",
		Components: []soferr.ComponentSpec{{
			Name:        "cache",
			RatePerYear: rate,
			Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 86400, BusySeconds: 3600},
		}},
	}
}

// TestSpecCompileMatchesHandBuiltSystem asserts the Spec path is a pure
// re-description: a compiled Spec answers every query bit-identically
// to the same system built directly from Components.
func TestSpecCompileMatchesHandBuiltSystem(t *testing.T) {
	ctx := context.Background()
	spec := soferr.Spec{
		Name: "pair",
		Components: []soferr.ComponentSpec{
			{
				Name:        "cache",
				RatePerYear: 1e5,
				Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 4},
			},
			{
				Name:        "bank",
				RatePerYear: 2e4,
				Count:       3, // superposes to one component at 6e4
				Trace: soferr.TraceSpec{Kind: soferr.TraceKindPeriodic, PeriodSeconds: 10,
					Intervals: []soferr.Interval{{Start: 1, End: 2}, {Start: 5, End: 8}}},
			},
		},
	}
	fromSpec, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}

	tr1 := mustBusyIdle(t, 10, 4)
	tr2, err := soferr.PeriodicTrace(10, []soferr.Interval{{Start: 1, End: 2}, {Start: 5, End: 8}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := soferr.NewSystem([]soferr.Component{
		{Name: "cache", RatePerYear: 1e5, Trace: tr1},
		{Name: "bank", RatePerYear: 6e4, Trace: tr2},
	}, soferr.WithName("pair"))
	if err != nil {
		t.Fatal(err)
	}

	opts := []soferr.EstimateOption{
		soferr.WithTrials(5000), soferr.WithSeed(11), soferr.WithEngine(soferr.Inverted),
	}
	a, err := fromSpec.CompareWith(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := direct.CompareWith(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("method %v: spec %+v != direct %+v", a[i].Method, a[i], b[i])
		}
	}
	ra, err := fromSpec.Reliability(ctx, 86400)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := direct.Reliability(ctx, 86400)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Errorf("Reliability: spec %v != direct %v", ra, rb)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := soferr.Spec{
		Name: "fleet",
		Components: []soferr.ComponentSpec{
			{Name: "cpu", RatePerYear: 3.1e4, Count: 500,
				Trace: soferr.TraceSpec{Kind: soferr.TraceKindCombined}},
			{Name: "cache", RatePerYear: 10,
				Trace: soferr.TraceSpec{Kind: soferr.TraceKindDay}},
		},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back soferr.Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name || len(back.Components) != 2 ||
		back.Components[0].Count != 500 || back.Components[0].Trace.Kind != soferr.TraceKindCombined {
		t.Errorf("round trip changed the spec: %+v", back)
	}
	if spec.Hash() != back.Hash() {
		t.Error("equal specs hash differently after a JSON round trip")
	}
}

func TestSpecHashStability(t *testing.T) {
	a := busyIdleSpec(100)
	b := busyIdleSpec(100)
	if a.Hash() != b.Hash() {
		t.Error("equal specs hash differently")
	}
	if !strings.HasPrefix(a.Hash(), "sha256:") {
		t.Errorf("hash %q lacks algorithm prefix", a.Hash())
	}
	c := busyIdleSpec(101)
	if a.Hash() == c.Hash() {
		t.Error("distinct specs collide")
	}
	d := busyIdleSpec(100)
	d.Components[0].Count = 2
	if a.Hash() == d.Hash() {
		t.Error("count change did not change the hash")
	}
	// Even invalid (non-marshalable) specs hash deterministically.
	bad := busyIdleSpec(math.NaN())
	if bad.Hash() != busyIdleSpec(math.NaN()).Hash() {
		t.Error("invalid specs hash nondeterministically")
	}
	// ... including with pointer-valued combined halves: the fallback
	// must hash by value, never by address.
	mkCombined := func() soferr.Spec {
		return soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: math.NaN(),
			Trace: soferr.TraceSpec{Kind: soferr.TraceKindCombined,
				A: &soferr.TraceSpec{Kind: soferr.TraceKindBenchmark, Benchmark: "gzip"},
				B: &soferr.TraceSpec{Kind: soferr.TraceKindBenchmark, Benchmark: "swim"},
			},
		}}}
	}
	if mkCombined().Hash() != mkCombined().Hash() {
		t.Error("equal non-marshalable specs with pointer halves hash differently")
	}
	other := mkCombined()
	other.Components[0].Trace.B.Benchmark = "gzip"
	if mkCombined().Hash() == other.Hash() {
		t.Error("distinct non-marshalable specs collide")
	}
}

func TestSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec soferr.Spec
		want string
	}{
		{"empty", soferr.Spec{}, "no components"},
		{"negative rate", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: -1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindDay}}}}, "invalid rate_per_year"},
		{"nan rate", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: math.NaN(), Trace: soferr.TraceSpec{Kind: soferr.TraceKindDay}}}}, "invalid rate_per_year"},
		{"negative count", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Count: -2, Trace: soferr.TraceSpec{Kind: soferr.TraceKindDay}}}}, "negative count"},
		{"missing kind", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1}}}, "missing kind"},
		{"unknown kind", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: "sinusoid"}}}}, "unknown kind"},
		{"busyidle no period", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle}}}}, "period_seconds"},
		{"busy > period", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle,
				PeriodSeconds: 10, BusySeconds: 11}}}}, "busy_seconds"},
		{"periodic interval order", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindPeriodic, PeriodSeconds: 10,
				Intervals: []soferr.Interval{{Start: 5, End: 8}, {Start: 1, End: 2}}}}}}, "unsorted"},
		{"unknown benchmark", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBenchmark,
				Benchmark: "doom"}}}}, "doom"},
		{"unknown unit", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBenchmark,
				Benchmark: "gzip", Unit: "alu"}}}}, "unknown unit"},
		{"instructions over cap", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindBenchmark,
				Benchmark: "gzip", Instructions: soferr.MaxSpecInstructions + 1}}}}, "exceeds the per-spec cap"},
		{"nested combined", soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1, Trace: soferr.TraceSpec{Kind: soferr.TraceKindCombined,
				A: &soferr.TraceSpec{Kind: soferr.TraceKindCombined}}}}}, "cannot nest"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, cerr := c.spec.Compile(); cerr == nil {
			t.Errorf("%s: compiled despite failing validation", c.name)
		}
	}
}

func TestSpecKindsCaseInsensitive(t *testing.T) {
	spec := soferr.Spec{Components: []soferr.ComponentSpec{{
		RatePerYear: 10,
		Trace:       soferr.TraceSpec{Kind: "BusyIdle", PeriodSeconds: 10, BusySeconds: 4},
	}}}
	if err := spec.Validate(); err != nil {
		t.Fatalf("mixed-case kind rejected: %v", err)
	}
	sys, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.RatePerYear(); got != 10 {
		t.Errorf("RatePerYear = %v", got)
	}
}

// TestCompilerSharesBenchmarkSimulations asserts the compiler's cache
// contract: two specs naming the same (benchmark, instructions, seed)
// simulate once, and the resulting unit traces are shared.
func TestCompilerSharesBenchmarkSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	var logged strings.Builder
	comp := &soferr.Compiler{Instructions: 20000, SimSeed: 1, Log: &logged}
	mk := func(unit string) soferr.Spec {
		return soferr.Spec{Components: []soferr.ComponentSpec{{
			RatePerYear: 1e5,
			Trace:       soferr.TraceSpec{Kind: soferr.TraceKindBenchmark, Benchmark: "gzip", Unit: unit},
		}}}
	}
	sysA, err := comp.Compile(mk(soferr.UnitInt))
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := comp.Compile(mk(soferr.UnitProcessor))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(logged.String(), "simulating gzip"); got != 1 {
		t.Errorf("gzip simulated %d times, want 1 (log: %q)", got, logged.String())
	}
	if sysA.Components()[0].Trace == sysB.Components()[0].Trace {
		t.Error("int and processor units returned the same trace")
	}

	// A distinct simulation seed is a distinct simulation.
	specSeeded := mk(soferr.UnitInt)
	specSeeded.Components[0].Trace.SimSeed = 2
	if _, err := comp.Compile(specSeeded); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(logged.String(), "simulating gzip"); got != 2 {
		t.Errorf("seeded respin simulated %d times total, want 2", got)
	}
}

// TestCompilerCombinedDefaultsMatchHarness asserts the combined-kind
// default pair builds the same schedule the experiment harness uses:
// the trace has a 24-hour period and a sane AVF.
func TestCompilerCombinedDefaultsMatchHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two benchmarks")
	}
	comp := &soferr.Compiler{Instructions: 20000, SimSeed: 1}
	tr, err := comp.BuildTrace(soferr.TraceSpec{Kind: soferr.TraceKindCombined})
	if err != nil {
		t.Fatal(err)
	}
	// The schedule repeats whole benchmark iterations per half day, so
	// the period is a day up to one benchmark period of rounding.
	if got := tr.Period(); math.Abs(got-86400) > 1 {
		t.Errorf("combined period = %v, want ~86400", got)
	}
	if avf := tr.AVF(); !(avf > 0 && avf < 1) {
		t.Errorf("combined AVF = %v", avf)
	}
}

func TestCompilerSourcesLazy(t *testing.T) {
	comp := &soferr.Compiler{}
	srcs := comp.Sources([]soferr.SourceSpec{
		{Trace: soferr.TraceSpec{Kind: soferr.TraceKindBusyIdle, PeriodSeconds: 10, BusySeconds: 5}},
		{Name: "weekly", Trace: soferr.TraceSpec{Kind: soferr.TraceKindWeek}},
	})
	if srcs[0].Name != "busyidle(5/10)" || srcs[1].Name != "weekly" {
		t.Errorf("derived names = %q, %q", srcs[0].Name, srcs[1].Name)
	}
	if srcs[0].Trace != nil {
		t.Error("sources should be lazy (Build, not Trace)")
	}
	tr, err := srcs[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.AVF() != 0.5 {
		t.Errorf("built AVF = %v, want 0.5", tr.AVF())
	}
}
