// Quickstart: compile a one-component System and compare the AVF
// shortcut against first principles, seeing where they agree and where
// they diverge.
//
// The component is a large cache running a half-busy, half-idle daily
// loop — the paper's canonical example. At today's terrestrial raw
// error rate the AVF shortcut is fine; at accelerated-test rates it
// overestimates the MTTF by nearly 2x.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const (
		day  = 86400.0 // seconds
		busy = day / 2
	)
	// A ~100MB cache: 1e9 bits at the terrestrial baseline of 1e-8
	// errors/year per bit is 10 raw errors/year.
	tr, err := soferr.BusyIdleTrace(day, busy)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %.0fh loop, busy %.0fh -> AVF = %.2f\n\n",
		day/3600, busy/3600, soferr.AVF(tr))

	fmt.Printf("%-28s %14s %14s %8s\n", "environment", "AVF MTTF", "true MTTF", "error")
	for _, env := range []struct {
		name        string
		ratePerYear float64
	}{
		{"terrestrial (10 err/yr)", 10},
		{"high altitude (5x)", 50},
		{"accelerated test (2000x)", 20000},
	} {
		// One compiled System per environment: both methods query the
		// same validated, precomputed state.
		sys, err := soferr.NewSystem([]soferr.Component{{
			Name: "cache", RatePerYear: env.ratePerYear, Trace: tr,
		}}, soferr.WithName(env.name))
		if err != nil {
			return err
		}
		ests, err := sys.Compare(ctx, soferr.AVFSOFR, soferr.SoftArch)
		if err != nil {
			return err
		}
		avfEst, truth := ests[0].MTTF, ests[1].MTTF
		fmt.Printf("%-28s %12.0f s %12.0f s %+7.1f%%\n",
			env.name, avfEst, truth, 100*(avfEst-truth)/truth)
	}

	fmt.Println("\nCross-checking first principles with Monte Carlo (200k trials):")
	sys, err := soferr.NewSystem([]soferr.Component{{
		Name: "cache", RatePerYear: 20000, Trace: tr,
	}})
	if err != nil {
		return err
	}
	mc, err := sys.MTTF(ctx, soferr.MonteCarlo, soferr.WithTrials(200000), soferr.WithSeed(42))
	if err != nil {
		return err
	}
	exact, err := sys.MTTF(ctx, soferr.SoftArch)
	if err != nil {
		return err
	}
	fmt.Printf("Monte Carlo: %.0f s +/- %.0f s; exact: %.0f s\n", mc.MTTF, mc.StdErr, exact.MTTF)

	// Distribution-level questions the flat MTTF API cannot answer:
	rel, err := sys.Reliability(ctx, day)
	if err != nil {
		return err
	}
	median, err := sys.FailureQuantile(ctx, 0.5)
	if err != nil {
		return err
	}
	fmt.Printf("P(survive first day) = %.3f; median TTF = %.0f s (mean %.0f s)\n",
		rel, median, exact.MTTF)
	return nil
}
