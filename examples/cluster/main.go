// Cluster sizing: how far can you trust SOFR when projecting the
// soft-error MTTF of a large cluster?
//
// A datacenter runs C identical nodes on a diurnal load (busy by day,
// idle by night — the paper's "day" workload). The standard projection
// divides the per-node MTTF by C (sum of failure rates). This program
// compiles one System per cluster size and compares that projection
// against the first-principles MTTF as the cluster grows, reproducing
// the failure mode of the paper's Figure 6(b): SOFR is fine for small
// clusters but overestimates MTTF by up to 2x at scale, because
// failures concentrate in the busy half of the day. The compiled System
// also answers fleet-planning questions the MTTF alone cannot: the
// probability of surviving a quarter, and the time by which 1% of
// fleets have failed.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	day, err := soferr.DayWorkload()
	if err != nil {
		return err
	}
	week, err := soferr.WeekWorkload()
	if err != nil {
		return err
	}

	// Each node carries 12.5MB (1e8 bits) of unprotected state at the
	// terrestrial baseline: 1 raw error/year/node.
	const perNodeRate = 1.0 // errors/year

	for _, wl := range []struct {
		name  string
		trace soferr.Trace
	}{
		{"day (busy 12h/24h)", day},
		{"week (busy 5d/7d)", week},
	} {
		node, err := soferr.NewSystem([]soferr.Component{{
			Name: "node", RatePerYear: perNodeRate, Trace: wl.trace,
		}}, soferr.WithName("node"))
		if err != nil {
			return err
		}
		perNode, err := node.MTTF(ctx, soferr.SoftArch)
		if err != nil {
			return err
		}
		fmt.Printf("workload %s: per-node MTTF = %.2f years\n",
			wl.name, perNode.MTTF/3.156e7)
		fmt.Printf("%10s %14s %14s %9s %14s %14s\n",
			"nodes", "SOFR MTTF", "true MTTF", "SOFR err", "P(survive 90d)", "1% fail by")
		for _, c := range []int{8, 100, 1000, 5000, 50000, 500000} {
			// Superposition: C identical in-phase nodes fail like one
			// node with C times the raw rate, so one compiled System
			// covers the whole cluster. The AVFSOFR method on it equals
			// the per-node-MTTF/C projection.
			cluster, err := soferr.NewSystem([]soferr.Component{{
				Name: "cluster", RatePerYear: perNodeRate * float64(c), Trace: wl.trace,
			}}, soferr.WithName(fmt.Sprintf("cluster-%d", c)))
			if err != nil {
				return err
			}
			ests, err := cluster.Compare(ctx, soferr.AVFSOFR, soferr.SoftArch)
			if err != nil {
				return err
			}
			sofrEst, truth := ests[0].MTTF, ests[1].MTTF
			quarter, err := cluster.Reliability(ctx, 90*86400)
			if err != nil {
				return err
			}
			p01, err := cluster.FailureQuantile(ctx, 0.01)
			if err != nil {
				return err
			}
			fmt.Printf("%10d %12.0f s %12.0f s %+8.1f%% %14.4f %12.0f s\n",
				c, sofrEst, truth, 100*(sofrEst-truth)/truth, quarter, p01)
		}
		fmt.Println()
	}
	fmt.Println("SOFR's error saturates at (1/AVF - 1): +100% for the day workload, +40% for week.")
	return nil
}
