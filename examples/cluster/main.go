// Cluster sizing: how far can you trust SOFR when projecting the
// soft-error MTTF of a large cluster?
//
// A datacenter runs C identical nodes on a diurnal load (busy by day,
// idle by night — the paper's "day" workload). The standard projection
// divides the per-node MTTF by C (sum of failure rates). This program
// compares that against the first-principles MTTF as the cluster grows,
// reproducing the failure mode of the paper's Figure 6(b): SOFR is fine
// for small clusters but overestimates MTTF by up to 2x at scale,
// because failures concentrate in the busy half of the day.
package main

import (
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	day, err := soferr.DayWorkload()
	if err != nil {
		return err
	}
	week, err := soferr.WeekWorkload()
	if err != nil {
		return err
	}

	// Each node carries 12.5MB (1e8 bits) of unprotected state at the
	// terrestrial baseline: 1 raw error/year/node.
	const perNodeRate = 1.0 // errors/year

	for _, wl := range []struct {
		name  string
		trace soferr.Trace
	}{
		{"day (busy 12h/24h)", day},
		{"week (busy 5d/7d)", week},
	} {
		perNode, err := soferr.SoftArchMTTF([]soferr.Component{{
			Name: "node", RatePerYear: perNodeRate, Trace: wl.trace,
		}})
		if err != nil {
			return err
		}
		fmt.Printf("workload %s: per-node MTTF = %.2f years\n",
			wl.name, perNode/3.156e7)
		fmt.Printf("%10s %14s %14s %9s\n", "nodes", "SOFR MTTF", "true MTTF", "SOFR err")
		for _, c := range []int{8, 100, 1000, 5000, 50000, 500000} {
			mttfs := make([]float64, c)
			for i := range mttfs {
				mttfs[i] = perNode
			}
			sofrEst, err := soferr.SOFRMTTF(mttfs)
			if err != nil {
				return err
			}
			// Superposition: C identical in-phase nodes fail like one
			// node with C times the raw rate.
			truth, err := soferr.SoftArchMTTF([]soferr.Component{{
				Name: "cluster", RatePerYear: perNodeRate * float64(c), Trace: wl.trace,
			}})
			if err != nil {
				return err
			}
			fmt.Printf("%10d %12.0f s %12.0f s %+8.1f%%\n",
				c, sofrEst, truth, 100*(sofrEst-truth)/truth)
		}
		fmt.Println()
	}
	fmt.Println("SOFR's error saturates at (1/AVF - 1): +100% for the day workload, +40% for week.")
	return nil
}
