// Cache sizing under a reliability budget: how large can an
// unprotected cache grow before the AVF shortcut misleads the MTTF
// sign-off by more than a given margin?
//
// A cache running an L-day loop, busy for L/2, at per-bit rates for
// ground, avionics, and space environments. For each environment the
// program compiles one System per cache size, compares the AVF estimate
// against the exact first-principles MTTF on that shared state, and
// reports the first size where the deviation exceeds 5%. The exact
// query is cross-checked against the paper's Figure 3 closed form
// (BusyIdleMTTF), which it must reproduce to machine precision.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/soferr/soferr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const (
		day       = 86400.0
		loopDays  = 8.0
		l         = loopDays * day
		a         = l / 2
		baseline  = 1e-8 // errors/year/bit (0.001 FIT)
		threshold = 0.05
	)
	fmt.Printf("workload: %.0f-day loop, busy half the time; AVF error threshold %.0f%%\n\n",
		loopDays, threshold*100)

	tr, err := soferr.BusyIdleTrace(l, a)
	if err != nil {
		return err
	}
	sizesMB := []float64{1, 4, 16, 64, 256, 1024, 4096}
	for _, env := range []struct {
		name  string
		scale float64
	}{
		{"ground (1x)", 1},
		{"avionics (100x)", 100},
		{"space (2000x)", 2000},
	} {
		fmt.Printf("%s:\n", env.name)
		fmt.Printf("  %10s %14s %14s %9s\n", "cache", "AVF MTTF", "true MTTF", "err")
		limit := ""
		for _, mb := range sizesMB {
			bits := mb * 8 * 1024 * 1024
			rate := bits * env.scale * baseline // errors/year
			sys, err := soferr.NewSystem([]soferr.Component{{
				Name: "cache", RatePerYear: rate, Trace: tr,
			}})
			if err != nil {
				return err
			}
			ests, err := sys.Compare(ctx, soferr.AVFSOFR, soferr.SoftArch)
			if err != nil {
				return err
			}
			avfMTTF, truth := ests[0].MTTF, ests[1].MTTF
			// The exact query must reproduce Derivation 1's closed form.
			closed, err := soferr.BusyIdleMTTF(rate, l, a)
			if err != nil {
				return err
			}
			if math.Abs(truth-closed)/closed > 1e-9 {
				return fmt.Errorf("System SoftArch %v disagrees with closed form %v", truth, closed)
			}
			relErr := (avfMTTF - truth) / truth
			fmt.Printf("  %8.0fMB %12.4g s %12.4g s %+8.2f%%\n", mb, avfMTTF, truth, 100*relErr)
			if limit == "" && relErr > threshold {
				limit = fmt.Sprintf("%.0fMB", mb)
			}
		}
		if limit == "" {
			fmt.Printf("  -> AVF stays within %.0f%% at every size tested\n\n", threshold*100)
		} else {
			fmt.Printf("  -> AVF exceeds %.0f%% error at %s: use first-principles MTTF above that\n\n",
				threshold*100, limit)
		}
	}
	return nil
}
