// Cache sizing under a reliability budget: how large can an
// unprotected cache grow before the AVF shortcut misleads the MTTF
// sign-off by more than a given margin?
//
// Uses the paper's Figure 3 closed form: a cache running an L-day loop,
// busy for L/2, at per-bit rates for ground, avionics, and space
// environments. For each environment the program sweeps cache sizes and
// reports the first size where the AVF estimate deviates from the exact
// MTTF by more than 5%.
package main

import (
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		day       = 86400.0
		loopDays  = 8.0
		l         = loopDays * day
		a         = l / 2
		baseline  = 1e-8 // errors/year/bit (0.001 FIT)
		threshold = 0.05
	)
	fmt.Printf("workload: %.0f-day loop, busy half the time; AVF error threshold %.0f%%\n\n",
		loopDays, threshold*100)

	sizesMB := []float64{1, 4, 16, 64, 256, 1024, 4096}
	for _, env := range []struct {
		name  string
		scale float64
	}{
		{"ground (1x)", 1},
		{"avionics (100x)", 100},
		{"space (2000x)", 2000},
	} {
		fmt.Printf("%s:\n", env.name)
		fmt.Printf("  %10s %14s %14s %9s\n", "cache", "AVF MTTF", "true MTTF", "err")
		limit := ""
		for _, mb := range sizesMB {
			bits := mb * 8 * 1024 * 1024
			rate := bits * env.scale * baseline // errors/year
			avfMTTF, err := soferr.AVFMTTF(rate, mustTrace(l, a))
			if err != nil {
				return err
			}
			truth, err := soferr.BusyIdleMTTF(rate, l, a)
			if err != nil {
				return err
			}
			relErr := (avfMTTF - truth) / truth
			fmt.Printf("  %8.0fMB %12.4g s %12.4g s %+8.2f%%\n", mb, avfMTTF, truth, 100*relErr)
			if limit == "" && relErr > threshold {
				limit = fmt.Sprintf("%.0fMB", mb)
			}
		}
		if limit == "" {
			fmt.Printf("  -> AVF stays within %.0f%% at every size tested\n\n", threshold*100)
		} else {
			fmt.Printf("  -> AVF exceeds %.0f%% error at %s: use first-principles MTTF above that\n\n",
				threshold*100, limit)
		}
	}
	return nil
}

func mustTrace(l, a float64) soferr.Trace {
	tr, err := soferr.BusyIdleTrace(l, a)
	if err != nil {
		panic(err)
	}
	return tr
}
