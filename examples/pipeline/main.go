// Pipeline reliability sign-off: run SPEC-like benchmarks through the
// cycle-level POWER4-like simulator, extract per-component masking
// traces, and project the processor's soft-error MTTF with AVF+SOFR —
// validating the projection against Monte Carlo, as in Section 5.1 of
// the paper.
package main

import (
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

// Section 4.1 raw error rates, errors/year.
const (
	intRate    = 2.3e-6
	fpRate     = 4.5e-6
	decodeRate = 3.3e-6
	regRate    = 1.0e-4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, bench := range []string{"gzip", "swim", "mcf"} {
		res, err := soferr.SimulateBenchmark(bench, 200000, 7)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions in %d cycles (IPC %.2f, mispredict %.1f%%)\n",
			res.Name, res.Instructions, res.Cycles, res.IPC(), 100*res.BranchMispredictRate)

		comps := []soferr.Component{
			{Name: "integer", RatePerYear: intRate, Trace: res.Int},
			{Name: "fp", RatePerYear: fpRate, Trace: res.FP},
			{Name: "decode", RatePerYear: decodeRate, Trace: res.Decode},
			{Name: "regfile", RatePerYear: regRate, Trace: res.RegFile},
		}

		var mttfs []float64
		for _, c := range comps {
			a := soferr.AVF(c.Trace)
			mttf, err := soferr.AVFMTTF(c.RatePerYear, c.Trace)
			if err != nil {
				return err
			}
			fmt.Printf("  %-8s AVF=%.3f  MTTF=%.3g years\n", c.Name, a, mttf/3.156e7)
			mttfs = append(mttfs, mttf)
		}
		sofrMTTF, err := soferr.SOFRMTTF(mttfs)
		if err != nil {
			return err
		}
		mc, err := soferr.MonteCarloMTTF(comps, soferr.MonteCarloOptions{Trials: 100000, Seed: 7})
		if err != nil {
			return err
		}
		fmt.Printf("  processor: AVF+SOFR=%.4g years, Monte Carlo=%.4g years (err %+.2f%%)\n\n",
			sofrMTTF/3.156e7, mc.MTTF/3.156e7, 100*(sofrMTTF-mc.MTTF)/mc.MTTF)
	}
	fmt.Println("At terrestrial rates and SPEC-scale loops, AVF+SOFR matches first principles —")
	fmt.Println("exactly the regime the paper validates in Section 5.1.")
	return nil
}
