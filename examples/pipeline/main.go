// Pipeline reliability sign-off: run SPEC-like benchmarks through the
// cycle-level POWER4-like simulator, extract per-component masking
// traces, compile the four components into one soferr.System, and
// compare the AVF+SOFR projection against Monte Carlo on that shared
// state — as in Section 5.1 of the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/soferr/soferr"
)

// Section 4.1 raw error rates, errors/year.
const (
	intRate    = 2.3e-6
	fpRate     = 4.5e-6
	decodeRate = 3.3e-6
	regRate    = 1.0e-4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	for _, bench := range []string{"gzip", "swim", "mcf"} {
		res, err := soferr.SimulateBenchmark(bench, 200000, 7)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d instructions in %d cycles (IPC %.2f, mispredict %.1f%%)\n",
			res.Name, res.Instructions, res.Cycles, res.IPC(), 100*res.BranchMispredictRate)

		comps := []soferr.Component{
			{Name: "integer", RatePerYear: intRate, Trace: res.Int},
			{Name: "fp", RatePerYear: fpRate, Trace: res.FP},
			{Name: "decode", RatePerYear: decodeRate, Trace: res.Decode},
			{Name: "regfile", RatePerYear: regRate, Trace: res.RegFile},
		}
		for _, c := range comps {
			a := soferr.AVF(c.Trace)
			mttf, err := soferr.AVFMTTF(c.RatePerYear, c.Trace)
			if err != nil {
				return err
			}
			fmt.Printf("  %-8s AVF=%.3f  MTTF=%.3g years\n", c.Name, a, mttf/3.156e7)
		}

		// Compile once; both whole-processor estimates query the same
		// validated state and are directly comparable.
		sys, err := soferr.NewSystem(comps, soferr.WithName(bench+" processor"))
		if err != nil {
			return err
		}
		ests, err := sys.CompareWith(ctx,
			[]soferr.EstimateOption{soferr.WithTrials(100000), soferr.WithSeed(7)},
			soferr.AVFSOFR, soferr.MonteCarlo)
		if err != nil {
			return err
		}
		sofrEst, mc := ests[0], ests[1]
		fmt.Printf("  processor: AVF+SOFR=%.4g years, Monte Carlo=%.4g years (err %+.2f%%, MC stderr %.2f%%)\n\n",
			sofrEst.MTTF/3.156e7, mc.MTTF/3.156e7,
			100*(sofrEst.MTTF-mc.MTTF)/mc.MTTF, 100*mc.RelStdErr())
	}
	fmt.Println("At terrestrial rates and SPEC-scale loops, AVF+SOFR matches first principles —")
	fmt.Println("exactly the regime the paper validates in Section 5.1.")
	return nil
}
